#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace nestsim {
namespace {

TEST(EngineTest, ClockStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.Now(), 0);
}

TEST(EngineTest, StepAdvancesClockToEventTime) {
  Engine engine;
  engine.ScheduleAt(100, [] {});
  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(engine.Now(), 100);
}

TEST(EngineTest, StepOnEmptyReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.Step());
  EXPECT_EQ(engine.Now(), 0);
}

TEST(EngineTest, ScheduleAfterIsRelative) {
  Engine engine;
  engine.ScheduleAt(50, [] {});
  engine.Step();
  SimTime fired_at = -1;
  engine.ScheduleAfter(25, [&] { fired_at = engine.Now(); });
  engine.Step();
  EXPECT_EQ(fired_at, 75);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    engine.ScheduleAt(t, [&] { ++fired; });
  }
  engine.RunUntil(50);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.Now(), 50);
}

TEST(EngineTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine engine;
  engine.RunUntil(1234);
  EXPECT_EQ(engine.Now(), 1234);
}

TEST(EngineTest, RunUntilIdleDrainsEverything) {
  Engine engine;
  int fired = 0;
  engine.ScheduleAt(1, [&] {
    ++fired;
    engine.ScheduleAfter(1, [&] { ++fired; });
  });
  EXPECT_EQ(engine.RunUntilIdle(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(engine.Idle());
}

TEST(EngineTest, RunUntilIdleRespectsMaxEvents) {
  Engine engine;
  // A self-perpetuating event: the guard must stop it.
  std::function<void()> again = [&] { engine.ScheduleAfter(1, again); };
  engine.ScheduleAt(0, again);
  EXPECT_EQ(engine.RunUntilIdle(100), 100u);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(engine.Cancel(id));
  engine.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsFiredCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) {
    engine.ScheduleAt(i, [] {});
  }
  engine.RunUntilIdle();
  EXPECT_EQ(engine.events_fired(), 7u);
}

TEST(EngineTest, EventsScheduledDuringStepRun) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(10, [&] {
    order.push_back(1);
    engine.ScheduleAt(10, [&] { order.push_back(2); });  // same instant, later order
  });
  engine.ScheduleAt(20, [&] { order.push_back(3); });
  engine.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, PendingEventsCount) {
  Engine engine;
  engine.ScheduleAt(5, [] {});
  engine.ScheduleAt(6, [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.Step();
  EXPECT_EQ(engine.pending_events(), 1u);
}

}  // namespace
}  // namespace nestsim
