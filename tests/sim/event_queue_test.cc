#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace nestsim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  // Determinism requirement: equal timestamps fire in insertion order.
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue queue;
  const EventId early = queue.Push(10, [] {});
  queue.Push(20, [] {});
  EXPECT_EQ(queue.NextTime(), 10);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
}

TEST(EventQueueTest, CancelPendingReturnsTrue) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelFiredReturnsFalse) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(kInvalidEventId));
  EXPECT_FALSE(queue.Cancel(123456));
}

TEST(EventQueueTest, CancelledEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(10, [&] { fired = true; });
  queue.Push(20, [] {});
  queue.Cancel(id);
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.Size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.Size(), 1u);
  queue.Pop();
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue queue;
  for (int i = 0; i < 5; ++i) {
    queue.Push(i, [] {});
  }
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, IdsAreUniqueAndNonZero) {
  EventQueue queue;
  EventId prev = kInvalidEventId;
  for (int i = 0; i < 100; ++i) {
    const EventId id = queue.Push(i, [] {});
    EXPECT_NE(id, kInvalidEventId);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(EventQueueTest, PopReturnsTimeAndId) {
  EventQueue queue;
  const EventId id = queue.Push(42, [] {});
  const EventQueue::Fired fired = queue.Pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueueTest, ManyCancellationsInterleaved) {
  EventQueue queue;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(queue.Push(i, [&] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    queue.Cancel(ids[i]);
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace nestsim
