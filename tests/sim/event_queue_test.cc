#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"
#include "tests/testing/reference_event_queue.h"

namespace nestsim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  // Determinism requirement: equal timestamps fire in insertion order.
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue queue;
  const EventId early = queue.Push(10, [] {});
  queue.Push(20, [] {});
  EXPECT_EQ(queue.NextTime(), 10);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
}

TEST(EventQueueTest, CancelPendingReturnsTrue) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelFiredReturnsFalse) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(kInvalidEventId));
  EXPECT_FALSE(queue.Cancel(123456));
}

TEST(EventQueueTest, CancelledEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(10, [&] { fired = true; });
  queue.Push(20, [] {});
  queue.Cancel(id);
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.Size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.Size(), 1u);
  queue.Pop();
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue queue;
  for (int i = 0; i < 5; ++i) {
    queue.Push(i, [] {});
  }
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, IdsAreUniqueAndNonZero) {
  EventQueue queue;
  EventId prev = kInvalidEventId;
  for (int i = 0; i < 100; ++i) {
    const EventId id = queue.Push(i, [] {});
    EXPECT_NE(id, kInvalidEventId);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(EventQueueTest, PopReturnsTimeAndId) {
  EventQueue queue;
  const EventId id = queue.Push(42, [] {});
  const EventQueue::Fired fired = queue.Pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueueTest, ManyCancellationsInterleaved) {
  EventQueue queue;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(queue.Push(i, [&] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    queue.Cancel(ids[i]);
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(fired, 500);
}

TEST(EventQueueTest, PopAfterCancelSkipsTombstoneAndFiresNextLive) {
  // Cancelling the heap's front leaves a tombstone; the next Pop must skip it
  // and return the earliest *live* event with its original time and id.
  EventQueue queue;
  const EventId front = queue.Push(10, [] { FAIL() << "cancelled event fired"; });
  int fired_token = 0;
  const EventId next = queue.Push(15, [&] { fired_token = 15; });
  queue.Push(20, [&] { fired_token = 20; });
  ASSERT_TRUE(queue.Cancel(front));
  EventQueue::Fired fired = queue.Pop();
  EXPECT_EQ(fired.time, 15);
  EXPECT_EQ(fired.id, next);
  fired.fn();
  EXPECT_EQ(fired_token, 15);
  EXPECT_EQ(queue.Size(), 1u);
}

TEST(EventQueueTest, StaleIdAfterSlotReuseIsNotCancellable) {
  // Exhaust and refill the queue so internal storage gets recycled; the ids
  // of long-fired events must stay dead even if their storage was reused.
  EventQueue queue;
  std::vector<EventId> old_ids;
  for (int i = 0; i < 16; ++i) {
    old_ids.push_back(queue.Push(i, [] {}));
  }
  while (!queue.Empty()) {
    queue.Pop();
  }
  std::vector<EventId> new_ids;
  for (int i = 0; i < 16; ++i) {
    new_ids.push_back(queue.Push(100 + i, [] {}));
  }
  for (EventId id : old_ids) {
    EXPECT_FALSE(queue.Cancel(id));
  }
  EXPECT_EQ(queue.Size(), 16u);
  for (EventId id : new_ids) {
    EXPECT_TRUE(queue.Cancel(id));
  }
}

TEST(EventQueueTest, SameTimeFifoSurvivesInterleavedPops) {
  // FIFO stability at one timestamp must hold even when pops and pushes
  // interleave (the heap reorders internally on every operation).
  EventQueue queue;
  std::vector<int> order;
  int token = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      const int t = token++;
      queue.Push(7, [&order, t] { order.push_back(t); });
    }
    queue.Pop().fn();  // pop two, leaving a partial batch behind
    queue.Pop().fn();
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  ASSERT_EQ(order.size(), static_cast<size_t>(token));
  for (int i = 0; i < token; ++i) {
    EXPECT_EQ(order[i], i) << "insertion order broken at position " << i;
  }
}

// Randomized differential test: drive the production queue and the
// pre-optimisation reference implementation with the same operation sequence
// and require identical observable behaviour — sizes, next-fire times, pop
// order (including FIFO among equal timestamps), and cancel results.
TEST(EventQueueTest, RandomizedDifferentialAgainstReference) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    EventQueue queue;
    nestsim::testing::ReferenceEventQueue reference;
    // Live handle pairs, indexed by insertion token.
    std::vector<std::pair<EventId, nestsim::testing::ReferenceEventQueue::Id>> handles;
    std::vector<bool> handle_live;
    int next_token = 0;

    for (int step = 0; step < 4000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.5 || queue.Empty()) {
        // Push at a clustered timestamp so equal times are common.
        const SimTime t = static_cast<SimTime>(rng.NextBounded(64));
        const int token = next_token++;
        (void)token;
        handles.push_back({queue.Push(t, [] {}), reference.Push(t, [] {})});
        handle_live.push_back(true);
      } else if (roll < 0.7) {
        // Cancel a random handle (possibly already dead).
        const size_t pick = rng.NextBounded(handles.size());
        const bool ours = queue.Cancel(handles[pick].first);
        const bool theirs = reference.Cancel(handles[pick].second);
        ASSERT_EQ(ours, theirs) << "cancel disagreement at step " << step;
        if (ours) {
          handle_live[pick] = false;
        }
      } else {
        ASSERT_EQ(queue.NextTime(), reference.NextTime());
        const EventQueue::Fired ours = queue.Pop();
        const auto theirs = reference.Pop();
        ASSERT_EQ(ours.time, theirs.time) << "pop time diverged at step " << step;
        // The implementations issue different id encodings, but the *ordinal*
        // they pop must match: find the token each id belongs to.
        size_t our_token = handles.size();
        size_t their_token = handles.size();
        for (size_t i = 0; i < handles.size(); ++i) {
          if (handles[i].first == ours.id) {
            our_token = i;
          }
          if (handles[i].second == theirs.id) {
            their_token = i;
          }
        }
        ASSERT_EQ(our_token, their_token) << "pop order diverged at step " << step;
        handle_live[our_token] = false;
      }
      ASSERT_EQ(queue.Empty(), reference.Empty());
      ASSERT_EQ(queue.Size(), reference.Size());
    }
    // Drain: the full remaining sequence must match.
    while (!queue.Empty()) {
      ASSERT_FALSE(reference.Empty());
      ASSERT_EQ(queue.NextTime(), reference.NextTime());
      const EventQueue::Fired ours = queue.Pop();
      const auto theirs = reference.Pop();
      ASSERT_EQ(ours.time, theirs.time);
      size_t our_token = handles.size();
      size_t their_token = handles.size();
      for (size_t i = 0; i < handles.size(); ++i) {
        if (handles[i].first == ours.id) {
          our_token = i;
        }
        if (handles[i].second == theirs.id) {
          their_token = i;
        }
      }
      ASSERT_EQ(our_token, their_token);
    }
    EXPECT_TRUE(reference.Empty());
  }
}

}  // namespace
}  // namespace nestsim
