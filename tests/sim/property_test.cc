// Randomized property tests for the simulation substrate (docs/TESTING.md).
//
// These complement the example-based tests in event_queue_test.cc and
// random_test.cc: instead of hand-picked cases, they drive the event queue
// with seeded random interleavings and check it against an independent
// stable-sort reference model, and they pin the RNG's exact output so a
// silent algorithm change (which would invalidate every recorded baseline)
// cannot slip through.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace nestsim {
namespace {

// Reference model entry: the (time, insertion-sequence) pair the queue must
// order by, plus whether the entry was cancelled before draining.
struct RefEntry {
  SimTime time;
  uint64_t sequence;
  EventId id;
  bool cancelled = false;
};

// Pushes a random schedule with heavy timestamp collisions (times drawn from
// a small range), then drains and compares against a stable sort by
// (time, insertion order).
TEST(EventQueuePropertyTest, RandomInterleavedPushesPopInStableOrder) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    EventQueue queue;
    std::vector<RefEntry> reference;
    const int pushes = 200;
    for (int i = 0; i < pushes; ++i) {
      // 16 distinct timestamps over 200 pushes guarantees many same-time runs.
      const SimTime t = static_cast<SimTime>(rng.NextBounded(16)) * kMicrosecond;
      const EventId id = queue.Push(t, [] {});
      reference.push_back({t, static_cast<uint64_t>(i), id});
    }
    std::stable_sort(reference.begin(), reference.end(),
                     [](const RefEntry& a, const RefEntry& b) {
                       if (a.time != b.time) {
                         return a.time < b.time;
                       }
                       return a.sequence < b.sequence;
                     });
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_FALSE(queue.Empty()) << "seed " << seed << " drained early at " << i;
      const EventQueue::Fired fired = queue.Pop();
      EXPECT_EQ(fired.time, reference[i].time) << "seed " << seed << " pop " << i;
      EXPECT_EQ(fired.id, reference[i].id) << "seed " << seed << " pop " << i;
    }
    EXPECT_TRUE(queue.Empty());
  }
}

// Same property with random cancellations and pops interleaved between
// pushes: the queue must agree with the reference at every step.
TEST(EventQueuePropertyTest, RandomPushPopCancelMatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 977);
    EventQueue queue;
    std::vector<RefEntry> reference;
    uint64_t sequence = 0;
    for (int step = 0; step < 400; ++step) {
      const uint64_t action = rng.NextBounded(10);
      if (action < 6) {  // push
        const SimTime t = static_cast<SimTime>(rng.NextBounded(8)) * kMicrosecond;
        const EventId id = queue.Push(t, [] {});
        reference.push_back({t, sequence++, id});
      } else if (action < 8) {  // cancel a random live reference entry
        std::vector<size_t> live;
        for (size_t i = 0; i < reference.size(); ++i) {
          if (!reference[i].cancelled) {
            live.push_back(i);
          }
        }
        if (!live.empty()) {
          RefEntry& victim = reference[live[rng.NextBounded(live.size())]];
          victim.cancelled = true;
          EXPECT_TRUE(queue.Cancel(victim.id));
          EXPECT_FALSE(queue.Cancel(victim.id)) << "double-cancel must be false";
        }
      } else if (!queue.Empty()) {  // pop: must be the earliest live entry
        auto best = reference.end();
        for (auto it = reference.begin(); it != reference.end(); ++it) {
          if (it->cancelled) {
            continue;
          }
          if (best == reference.end() || it->time < best->time ||
              (it->time == best->time && it->sequence < best->sequence)) {
            best = it;
          }
        }
        ASSERT_NE(best, reference.end());
        EXPECT_EQ(queue.NextTime(), best->time);
        const EventQueue::Fired fired = queue.Pop();
        EXPECT_EQ(fired.time, best->time) << "seed " << seed << " step " << step;
        EXPECT_EQ(fired.id, best->id) << "seed " << seed << " step " << step;
        reference.erase(best);
      }
      const size_t live = static_cast<size_t>(
          std::count_if(reference.begin(), reference.end(),
                        [](const RefEntry& e) { return !e.cancelled; }));
      EXPECT_EQ(queue.Size(), live) << "seed " << seed << " step " << step;
    }
  }
}

// Pinned golden draws: the first raw outputs of xoshiro256** for a fixed
// seed. Any change to seeding or the generator breaks every recorded
// baseline, so this must fail loudly rather than drift silently.
TEST(RandomPropertyTest, GoldenDrawsForSeed42ArePinned) {
  Rng rng(42);
  const uint64_t expected[] = {
      rng.NextU64(), rng.NextU64(), rng.NextU64(), rng.NextU64(),
  };
  // Re-derive from a fresh instance: the sequence is a pure function of the
  // seed, so a second Rng must reproduce it draw for draw...
  Rng again(42);
  for (uint64_t value : expected) {
    EXPECT_EQ(again.NextU64(), value);
  }
  // ...and the absolute values are pinned against the splitmix64-seeded
  // xoshiro256** reference stream.
  uint64_t state = 42;
  uint64_t s[4];
  for (auto& word : s) {
    word = SplitMix64(state);
  }
  auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
  Rng pinned(42);
  for (int i = 0; i < 8; ++i) {
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    EXPECT_EQ(pinned.NextU64(), result) << "draw " << i;
  }
}

}  // namespace
}  // namespace nestsim
