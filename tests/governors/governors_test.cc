#include "src/governors/governors.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(PerformanceGovernorTest, AlwaysRequestsNominal) {
  PerformanceGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.0), 2.3);
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.5), 2.3);
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 1.0), 2.3);
}

TEST(SchedutilGovernorTest, ZeroUtilRequestsMin) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.0), spec.min_freq_ghz);
}

TEST(SchedutilGovernorTest, FullUtilRequestsMaxTurbo) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 1.0), spec.turbo.MaxTurboGhz());
}

TEST(SchedutilGovernorTest, HeadroomFactorApplied) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  // 1.25 * 0.5 * 3.9 = 2.4375
  EXPECT_NEAR(gov.RequestGhz(spec, 0.5), 1.25 * 0.5 * 3.9, 1e-9);
}

TEST(SchedutilGovernorTest, RequestIsMonotoneInUtil) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-6130-2s");
  double last = 0.0;
  for (double util = 0.0; util <= 1.0; util += 0.05) {
    const double req = gov.RequestGhz(spec, util);
    EXPECT_GE(req, last);
    EXPECT_GE(req, spec.min_freq_ghz);
    EXPECT_LE(req, spec.turbo.MaxTurboGhz());
    last = req;
  }
}

TEST(MakeGovernorTest, ByName) {
  EXPECT_STREQ(MakeGovernor("schedutil")->name(), "schedutil");
  EXPECT_STREQ(MakeGovernor("performance")->name(), "performance");
}

TEST(MakeGovernorDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)MakeGovernor("ondemand"), "unknown governor");
}

}  // namespace
}  // namespace nestsim
