#include "src/governors/governors.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(PerformanceGovernorTest, AlwaysRequestsNominal) {
  PerformanceGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.0), 2.3);
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.5), 2.3);
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 1.0), 2.3);
}

TEST(SchedutilGovernorTest, ZeroUtilRequestsMin) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 0.0), spec.min_freq_ghz);
}

TEST(SchedutilGovernorTest, FullUtilRequestsMaxTurbo) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, 1.0), spec.turbo.MaxTurboGhz());
}

TEST(SchedutilGovernorTest, HeadroomFactorApplied) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  // 1.25 * 0.5 * 3.9 = 2.4375
  EXPECT_NEAR(gov.RequestGhz(spec, 0.5), 1.25 * 0.5 * 3.9, 1e-9);
}

TEST(SchedutilGovernorTest, RequestIsMonotoneInUtil) {
  SchedutilGovernor gov;
  const MachineSpec& spec = MachineByName("intel-6130-2s");
  double last = 0.0;
  for (double util = 0.0; util <= 1.0; util += 0.05) {
    const double req = gov.RequestGhz(spec, util);
    EXPECT_GE(req, last);
    EXPECT_GE(req, spec.min_freq_ghz);
    EXPECT_LE(req, spec.turbo.MaxTurboGhz());
    last = req;
  }
}

// ---- budget governor (docs/FAULTS.md) ------------------------------------

TEST(BudgetGovernorTest, UncappedBehavesExactlyLikeSchedutil) {
  BudgetGovernor gov(PowerParams{});  // budget_w == 0: the cap is off
  SchedutilGovernor base;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  for (const double util : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(gov.RequestGhz(spec, util), base.RequestGhz(spec, util));
    EXPECT_DOUBLE_EQ(gov.RequestGhzOn(spec, util, 0), base.RequestGhz(spec, util));
  }
  EXPECT_DOUBLE_EQ(gov.BudgetWatts(), 0.0);
  EXPECT_FALSE(gov.ThrottledOnSocket(0));
  EXPECT_DOUBLE_EQ(gov.CapGhzOn(spec, 0), 0.0);
}

TEST(BudgetGovernorTest, OverBudgetSocketIsThrottledCappedAndScaledDown) {
  Engine engine;
  const MachineSpec& spec = MachineByName("amd-4650g-1s");
  HardwareModel hw(&engine, spec);
  PowerParams params;
  params.budget_w = 1.0;  // far below even the idle package draw
  BudgetGovernor gov(params);
  gov.AttachHardware(&hw);
  for (int cpu = 0; cpu < hw.topology().num_cpus(); ++cpu) {
    hw.SetThreadBusy(cpu, true);
  }
  EXPECT_TRUE(gov.ThrottledOnSocket(0));
  // The ceiling engages (nonzero) but never dips below the hardware minimum.
  const double cap = gov.CapGhzOn(spec, 0);
  EXPECT_GT(cap, 0.0);
  EXPECT_DOUBLE_EQ(cap, spec.min_freq_ghz);
  // The proportional request backs off all the way to the floor too.
  EXPECT_DOUBLE_EQ(gov.RequestGhzOn(spec, 1.0, 0), spec.min_freq_ghz);
}

// RAPL-style enforcement window: after a sustained burst, a momentary idle
// dip (a gang barrier) must not lift the cap; only a drained window does.
TEST(BudgetGovernorTest, WindowKeepsTheCapEngagedAcrossAnIdleDip) {
  Engine engine;
  const MachineSpec& spec = MachineByName("amd-4650g-1s");
  HardwareModel hw(&engine, spec);
  PowerParams params;
  // With no governor driving requests the cores sit at the wake floor, so the
  // all-busy draw is ~16 W against ~7 W idle; 12 W puts the target between.
  params.budget_w = 12.0;
  BudgetGovernor gov(params);
  gov.AttachHardware(&hw);
  auto advance_to = [&engine](SimTime t) {
    engine.ScheduleAt(t, [] {});
    while (engine.Step()) {
    }
  };
  EXPECT_FALSE(gov.ThrottledOnSocket(0));  // idle sits under the cap
  for (int cpu = 0; cpu < hw.topology().num_cpus(); ++cpu) {
    hw.SetThreadBusy(cpu, true);
  }
  advance_to(10 * kMillisecond);
  EXPECT_TRUE(gov.ThrottledOnSocket(0));  // sustained burst: over budget
  for (int cpu = 0; cpu < hw.topology().num_cpus(); ++cpu) {
    hw.SetThreadBusy(cpu, false);
  }
  advance_to(10 * kMillisecond + 100 * kMicrosecond);
  EXPECT_TRUE(gov.ThrottledOnSocket(0));  // the dip: window still loaded
  advance_to(60 * kMillisecond);
  EXPECT_FALSE(gov.ThrottledOnSocket(0));  // window drained: cap lifts
}

TEST(MakeGovernorTest, ByName) {
  EXPECT_STREQ(MakeGovernor("schedutil")->name(), "schedutil");
  EXPECT_STREQ(MakeGovernor("performance")->name(), "performance");
  PowerParams power;
  power.budget_w = 30.0;
  EXPECT_STREQ(MakeGovernor("budget", power)->name(), "budget");
}

TEST(GovernorNamesTest, ListsEveryFactoryNameOnce) {
  const std::vector<std::string> names = GovernorNames();
  ASSERT_EQ(names.size(), 3u);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsKnownGovernor(name)) << name;
    EXPECT_STREQ(MakeGovernor(name)->name(), name.c_str());
  }
  EXPECT_FALSE(IsKnownGovernor("ondemand"));
}

TEST(MakeGovernorDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)MakeGovernor("ondemand"), "unknown governor");
}

}  // namespace
}  // namespace nestsim
