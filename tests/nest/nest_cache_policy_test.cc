// NestCachePolicy selection tests (src/nest/nest_cache_policy.h): the
// warm-anchor bias toward the task's warm die, cost-aware expansion on the
// CFS fallback, the dominant-die compaction grace, and the guarantee that
// all switches off degenerates to plain Nest decisions.
//
// Directly-constructed Tasks carry no warmth state; tests that need it
// resize llc_warmth (one PeltSignal per socket) and Set it explicitly.

#include "src/nest/nest_cache_policy.h"

#include <gtest/gtest.h>

#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

struct NestCacheRig {
  explicit NestCacheRig(NestCacheParams cache_params = NestCacheParams(),
                        NestParams params = NestParams())
      : hw(&engine, FixedFreqMachine(2, 4, 2)),
        nest(params, cache_params),
        kernel(&engine, &hw, &nest, &governor) {
    kernel.Start();
    ProgramBuilder b("root");
    b.Compute(1);
    kernel.SpawnInitial(b.Build(), "root", 0, 0);
    engine.RunUntil(kMillisecond);
  }

  Task* Occupy(int cpu) {
    ProgramBuilder b("hog");
    b.Compute(1e12);
    return kernel.SpawnInitial(b.Build(), "hog", 0, cpu);
  }

  int Wake(Task& t, int waker) {
    WakeContext ctx;
    ctx.waker_cpu = waker;
    return nest.SelectCpuWake(t, ctx);
  }

  // Makes `cpu` a primary-nest member via the previous-core favouring path.
  void MakePrimary(int cpu) {
    Task t;
    t.prev_cpu = cpu;
    ASSERT_EQ(Wake(t, 0), cpu);
    ASSERT_TRUE(nest.InPrimary(cpu));
  }

  // Seeds a warmth map that is `warmth`-warm on `socket` and cold elsewhere.
  void SeedWarmth(Task& t, int socket, double warmth) {
    t.llc_warmth.resize(static_cast<size_t>(kernel.topology().num_sockets()));
    t.llc_warmth[static_cast<size_t>(socket)].Set(engine.Now(), warmth);
  }

  Engine engine;
  HardwareModel hw;
  PerformanceGovernor governor;
  NestCachePolicy nest;
  Kernel kernel;
};

TEST(NestCachePolicyTest, NameAndWarmthWish) {
  NestCacheRig rig;
  EXPECT_STREQ(rig.nest.name(), "nest_cache");
  EXPECT_TRUE(rig.nest.WantsCacheWarmth());
  NestPolicy plain;
  EXPECT_FALSE(plain.WantsCacheWarmth());
}

// The decisive divergence from plain Nest: a warm task whose die has a free
// *reserve* core but no free primary core stays home instead of taking the
// off-die primary core the standard ladder ranks first.
TEST(NestCachePolicyTest, WarmTaskPrefersOnDieReserveOverOffDiePrimary) {
  NestCacheRig rig;
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  // Demote s0b to the reserve: a task exit on an idle primary core does it.
  Task gone;
  rig.nest.OnTaskExit(gone, s0b);
  ASSERT_TRUE(rig.nest.InReserve(s0b));
  rig.MakePrimary(s1a);
  rig.Occupy(s0a);  // the warm die's only primary core is now busy

  Task t;
  t.prev_cpu = s0a;  // busy, so the wake reaches the common ladder
  rig.SeedWarmth(t, 0, 0.9);
  const int chosen = rig.Wake(t, s1a);
  EXPECT_EQ(chosen, s0b);
  EXPECT_EQ(t.placement_path, PlacementPath::kNestCacheWarm);
  // The reserve hit earns the same promotion as in the standard ladder.
  EXPECT_TRUE(rig.nest.InPrimary(s0b));
  EXPECT_FALSE(rig.nest.InReserve(s0b));
}

TEST(NestCachePolicyTest, WarmAnchorOffTakesTheOffDiePrimary) {
  NestCacheParams cp;
  cp.enable_warm_anchor = false;
  NestCacheRig rig(cp);
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  Task gone;
  rig.nest.OnTaskExit(gone, s0b);
  rig.MakePrimary(s1a);
  rig.Occupy(s0a);

  Task t;
  t.prev_cpu = s0a;
  rig.SeedWarmth(t, 0, 0.9);
  // Identical setup to the test above, but the switch is off: plain Nest
  // ranks the off-die primary core above the on-die reserve.
  EXPECT_EQ(rig.Wake(t, s1a), s1a);
  EXPECT_EQ(t.placement_path, PlacementPath::kNestPrimary);
}

TEST(NestCachePolicyTest, ColdTaskTakesTheStandardLadder) {
  NestCacheRig rig;  // warm_bias_threshold defaults to 0.5
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  Task gone;
  rig.nest.OnTaskExit(gone, s0b);
  rig.MakePrimary(s1a);
  rig.Occupy(s0a);

  Task t;
  t.prev_cpu = s0a;
  rig.SeedWarmth(t, 0, 0.2);  // below the bias threshold
  EXPECT_EQ(rig.Wake(t, s1a), s1a);
  EXPECT_EQ(t.placement_path, PlacementPath::kNestPrimary);
}

TEST(NestCachePolicyTest, FullWarmDieFallsThroughToTheLadder) {
  NestCacheRig rig;
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  Task gone;
  rig.nest.OnTaskExit(gone, s0b);
  rig.MakePrimary(s1a);
  rig.Occupy(s0a);
  rig.Occupy(s0b);  // warm die entirely busy: the refill is unavoidable

  Task t;
  t.prev_cpu = s0a;
  rig.SeedWarmth(t, 0, 0.9);
  EXPECT_EQ(rig.Wake(t, s1a), s1a);
  EXPECT_EQ(t.placement_path, PlacementPath::kNestPrimary);
}

TEST(NestCachePolicyTest, CostAwareExpansionPrefersTheWarmDie) {
  NestCacheRig rig;
  const Topology& topo = rig.kernel.topology();
  // Empty nests, everything idle: the ladder ends in the CFS fallback.
  Task t;
  rig.SeedWarmth(t, 1, 0.9);
  const int chosen = rig.Wake(t, 0);
  EXPECT_EQ(topo.SocketOf(chosen), 1);
  EXPECT_EQ(t.placement_path, PlacementPath::kNestCfsFallback);
  EXPECT_TRUE(rig.nest.InReserve(chosen));  // fallback cores join the reserve
}

TEST(NestCachePolicyTest, CostAwareExpansionOffFollowsCfs) {
  NestCacheParams cp;
  cp.enable_cost_aware_expansion = false;
  NestCacheRig rig(cp);
  Task t;
  rig.SeedWarmth(t, 1, 0.9);
  // CFS wake-affines to the (idle) waker CPU on socket 0 despite the warmth.
  const int chosen = rig.Wake(t, 0);
  EXPECT_EQ(rig.kernel.topology().SocketOf(chosen), 0);
}

TEST(NestCachePolicyTest, CompactionGraceShieldsTheDominantDie) {
  NestParams np;
  np.p_remove_ticks = 1;  // base idle limit: 1 tick (4 ms)
  NestCacheParams cp;
  cp.compaction_grace_ticks = 2;  // dominant die: 3 ticks (12 ms)
  NestCacheRig rig(cp, np);
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  // Socket 0 holds two primary cores (the dominant die), socket 1 one.
  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  rig.MakePrimary(s1a);

  // Past the base limit but inside the grace window: a search evicts the
  // idle off-die core yet keeps the dominant die intact.
  rig.engine.RunUntil(9 * kMillisecond);
  Task p1;
  EXPECT_EQ(rig.Wake(p1, s1a), s0a);
  EXPECT_FALSE(rig.nest.InPrimary(s1a));
  EXPECT_TRUE(rig.nest.InPrimary(s0a));
  EXPECT_TRUE(rig.nest.InPrimary(s0b));

  // Past the graced limit the dominant die is evictable too (s0a was
  // re-marked used by the probe above; s0b has idled since setup).
  rig.engine.RunUntil(17 * kMillisecond);
  Task p2;
  EXPECT_EQ(rig.Wake(p2, s0b), s0a);
  EXPECT_FALSE(rig.nest.InPrimary(s0b));
}

TEST(NestCachePolicyTest, GraceDisabledCompactsLikePlainNest) {
  NestParams np;
  np.p_remove_ticks = 1;
  NestCacheParams cp;
  cp.enable_compaction_grace = false;
  NestCacheRig rig(cp, np);
  const Topology& topo = rig.kernel.topology();
  const int s0a = topo.CpusOnSocket(0)[1];
  const int s0b = topo.CpusOnSocket(0)[2];
  const int s1a = topo.CpusOnSocket(1)[0];

  rig.MakePrimary(s0a);
  rig.MakePrimary(s0b);
  rig.MakePrimary(s1a);

  // Same probe time as the grace test: without the grace, the whole primary
  // nest — dominant die included — expired at the base limit.
  rig.engine.RunUntil(9 * kMillisecond);
  Task p1;
  const int chosen = rig.Wake(p1, s1a);
  EXPECT_EQ(p1.placement_path, PlacementPath::kNestReserve);
  EXPECT_EQ(chosen, s1a);  // demoted cores land in the reserve and come back
  EXPECT_FALSE(rig.nest.InPrimary(s0a));
  EXPECT_FALSE(rig.nest.InPrimary(s0b));
}

TEST(NestCachePolicyTest, AllSwitchesOffMatchesPlainNestDecisions) {
  NestCacheParams off;
  off.enable_warm_anchor = false;
  off.enable_cost_aware_expansion = false;
  off.enable_compaction_grace = false;
  NestCacheRig cache_rig(off);

  struct PlainRig {
    PlainRig()
        : hw(&engine, FixedFreqMachine(2, 4, 2)),
          nest(NestParams{}),
          kernel(&engine, &hw, &nest, &governor) {
      kernel.Start();
      ProgramBuilder b("root");
      b.Compute(1);
      kernel.SpawnInitial(b.Build(), "root", 0, 0);
      engine.RunUntil(kMillisecond);
    }
    Engine engine;
    HardwareModel hw;
    PerformanceGovernor governor;
    NestPolicy nest;
    Kernel kernel;
  } plain_rig;

  // Replay one deterministic fork/wake mix through both policies; warmth is
  // seeded on the cache side only (the plain policy cannot read it anyway).
  const int num_cpus = cache_rig.kernel.topology().num_cpus();
  for (int i = 0; i < 24; ++i) {
    Task a;
    Task b;
    const int prev = (i * 5) % num_cpus;
    a.prev_cpu = prev;
    b.prev_cpu = prev;
    a.prev_prev_cpu = i % 3 == 0 ? prev : -1;
    b.prev_prev_cpu = a.prev_prev_cpu;
    cache_rig.SeedWarmth(a, (i % 2), 0.95);
    int got;
    int want;
    if (i % 4 == 0) {
      got = cache_rig.nest.SelectCpuFork(a, prev);
      want = plain_rig.nest.SelectCpuFork(b, prev);
    } else {
      WakeContext ctx;
      ctx.waker_cpu = (i * 7) % num_cpus;
      got = cache_rig.nest.SelectCpuWake(a, ctx);
      want = plain_rig.nest.SelectCpuWake(b, ctx);
    }
    ASSERT_EQ(got, want) << "step " << i;
    ASSERT_EQ(a.placement_path, b.placement_path) << "step " << i;
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      ASSERT_EQ(cache_rig.nest.InPrimary(cpu), plain_rig.nest.InPrimary(cpu))
          << "step " << i << " cpu " << cpu;
      ASSERT_EQ(cache_rig.nest.InReserve(cpu), plain_rig.nest.InReserve(cpu))
          << "step " << i << " cpu " << cpu;
    }
  }
}

}  // namespace
}  // namespace nestsim
