#include "src/nest/nest_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

struct NestRig {
  explicit NestRig(NestParams params = NestParams(),
                   MachineSpec spec = FixedFreqMachine(2, 4, 2))
      : hw(&engine, spec), nest(params), kernel(&engine, &hw, &nest, &governor) {
    kernel.Start();
    // Establish root_cpu (the fixed reserve-search start) without occupying
    // anything for long.
    ProgramBuilder b("root");
    b.Compute(1);
    kernel.SpawnInitial(b.Build(), "root", 0, 0);
    engine.RunUntil(kMillisecond);
  }

  Task* Occupy(int cpu) {
    ProgramBuilder b("hog");
    b.Compute(1e12);
    return kernel.SpawnInitial(b.Build(), "hog", 0, cpu);
  }

  // Runs a wake selection for a task with the given history.
  int Wake(Task& t, int waker) {
    WakeContext ctx;
    ctx.waker_cpu = waker;
    return nest.SelectCpuWake(t, ctx);
  }

  Engine engine;
  HardwareModel hw;
  PerformanceGovernor governor;
  NestPolicy nest;
  Kernel kernel;
};

TEST(NestPolicyTest, EmptyNestFallsBackToCfsAndJoinsReserve) {
  NestRig rig;
  Task child;
  const int cpu = rig.nest.SelectCpuFork(child, 0);
  EXPECT_GE(cpu, 0);
  // A CFS-chosen core normally enters the reserve nest (§3.1).
  EXPECT_TRUE(rig.nest.InReserve(cpu));
  EXPECT_FALSE(rig.nest.InPrimary(cpu));
  EXPECT_EQ(rig.nest.ReserveSize(), 1);
}

TEST(NestPolicyTest, ReserveHitPromotesToPrimary) {
  NestRig rig;
  Task a;
  const int cpu = rig.nest.SelectCpuFork(a, 0);
  ASSERT_TRUE(rig.nest.InReserve(cpu));
  Task b;
  const int again = rig.nest.SelectCpuFork(b, 0);
  EXPECT_EQ(again, cpu);
  EXPECT_TRUE(rig.nest.InPrimary(cpu));
  EXPECT_FALSE(rig.nest.InReserve(cpu));
}

TEST(NestPolicyTest, PrimaryAndReserveAreDisjoint) {
  NestRig rig;
  // Drive a bunch of selections and check the invariant throughout.
  for (int i = 0; i < 40; ++i) {
    Task t;
    t.prev_cpu = i % 8;
    rig.Wake(t, 0);
    for (int cpu = 0; cpu < rig.kernel.topology().num_cpus(); ++cpu) {
      ASSERT_FALSE(rig.nest.InPrimary(cpu) && rig.nest.InReserve(cpu)) << "cpu " << cpu;
    }
  }
}

TEST(NestPolicyTest, ReserveIsBoundedByRmax) {
  NestParams params;
  params.r_max = 2;
  NestRig rig(params);
  // Force many distinct CFS fallbacks by occupying chosen cores.
  for (int i = 0; i < 6; ++i) {
    Task t;
    const int cpu = rig.nest.SelectCpuFork(t, 0);
    rig.Occupy(cpu);
    EXPECT_LE(rig.nest.ReserveSize(), 2);
  }
}

TEST(NestPolicyTest, PrimarySearchStartsAtPreviousCore) {
  NestRig rig;
  // Build a primary nest of cores 1 and 2.
  Task t1;
  const int c1 = rig.nest.SelectCpuFork(t1, 1);
  Task t2;
  const int c2 = rig.nest.SelectCpuFork(t2, 1);
  ASSERT_EQ(c1, c2);  // promotion path reuses the same core
  ASSERT_TRUE(rig.nest.InPrimary(c1));

  Task waker;
  waker.prev_cpu = c1;
  waker.prev_prev_cpu = -1;
  const int chosen = rig.Wake(waker, 0);
  EXPECT_EQ(chosen, c1);  // idle primary core at its previous position
}

TEST(NestPolicyTest, AttachedTaskReturnsToItsCore) {
  NestRig rig;
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);  // promote to primary
  ASSERT_TRUE(rig.nest.InPrimary(core));

  Task attached;
  attached.prev_cpu = core;
  attached.prev_prev_cpu = core;  // history of 2 identical stints (§3.3)
  EXPECT_EQ(rig.Wake(attached, 5), core);
}

TEST(NestPolicyTest, AttachmentDisabledFallsThrough) {
  NestParams params;
  params.enable_attach = false;
  NestRig rig(params);
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  ASSERT_TRUE(rig.nest.InPrimary(core));
  // Even without attachment the primary search still finds the core; this
  // exercises the switch rather than the outcome.
  Task t;
  t.prev_cpu = core;
  t.prev_prev_cpu = core;
  EXPECT_EQ(rig.Wake(t, 5), core);
}

TEST(NestPolicyTest, ImpatienceExpandsPrimaryDirectly) {
  NestParams params;
  params.r_impatient = 2;
  NestRig rig(params);
  // Primary core occupied by someone else.
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  ASSERT_TRUE(rig.nest.InPrimary(core));
  rig.Occupy(core);

  Task t;
  t.prev_cpu = core;
  t.prev_prev_cpu = -1;
  // First failed wake: impatience 1; falls back normally.
  rig.Wake(t, 0);
  EXPECT_EQ(t.impatience, 1);
  // Second failed wake: impatient path; the chosen core goes straight to
  // primary and the counter resets (§3.1).
  const int chosen = rig.Wake(t, 0);
  EXPECT_EQ(t.impatience, 0);
  EXPECT_TRUE(rig.nest.InPrimary(chosen));
}

TEST(NestPolicyTest, ImpatienceResetsWhenPrevIsIdle) {
  NestRig rig;
  Task t;
  t.prev_cpu = 3;  // idle
  t.impatience = 1;
  rig.Wake(t, 0);
  EXPECT_EQ(t.impatience, 0);
}

TEST(NestPolicyTest, ExitDemotesIdleCoreToReserve) {
  NestRig rig;
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  ASSERT_TRUE(rig.nest.InPrimary(core));

  Task dead;
  rig.nest.OnTaskExit(dead, core);  // core is idle
  EXPECT_FALSE(rig.nest.InPrimary(core));
  EXPECT_TRUE(rig.nest.InReserve(core));
}

TEST(NestPolicyTest, ExitKeepsBusyCore) {
  NestRig rig;
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  rig.Occupy(core);
  Task dead;
  rig.nest.OnTaskExit(dead, core);
  EXPECT_TRUE(rig.nest.InPrimary(core));
}

TEST(NestPolicyTest, CompactionMarksLongIdlePrimaryCores) {
  NestParams params;
  params.p_remove_ticks = 2;
  NestRig rig(params);
  Task setup;
  const int stale = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  ASSERT_TRUE(rig.nest.InPrimary(stale));
  EXPECT_FALSE(rig.nest.CompactionEligible(stale));
  // Grow a second primary core so the search has a live alternative.
  rig.Occupy(stale);
  Task other;
  const int fresh_reserve = rig.nest.SelectCpuFork(other, 0);
  Task other2;
  const int fresh = rig.nest.SelectCpuFork(other2, 0);
  ASSERT_EQ(fresh, fresh_reserve);
  ASSERT_TRUE(rig.nest.InPrimary(fresh));
  ASSERT_NE(fresh, stale);
  // `stale` is busy (occupied), so it cannot expire yet; free it by letting
  // time pass after marking: simplest is to expire `stale` while idle — so
  // re-run with `stale` idle and `fresh` kept warm.
  // Keep `fresh` warm by touching it each tick.
  for (int i = 0; i < 4; ++i) {
    rig.engine.RunUntil(rig.engine.Now() + kTickPeriod);
    Task dummy;
    rig.nest.OnTaskEnqueued(dummy, fresh);
  }
  // `stale` stayed busy, never idle -> not eligible. Kill nothing; instead
  // verify eligibility semantics on an idle primary core: demote `stale`'s
  // hog and wait.
  // (The Occupy task never exits in this rig, so assert on `fresh` going
  // stale instead once we stop touching it.)
  rig.engine.RunUntil(rig.engine.Now() + 3 * kTickPeriod);
  EXPECT_TRUE(rig.nest.CompactionEligible(fresh));
  // A non-attached wake anchored at `fresh` demotes it; the primary search
  // continues and must not return the demoted core from the primary nest.
  Task t;
  t.prev_cpu = fresh;
  t.prev_prev_cpu = -1;
  const int chosen = rig.Wake(t, 0);
  EXPECT_FALSE(rig.nest.InPrimary(fresh) && chosen != fresh);
  // Either the core was demoted (normal compaction) or re-selected through
  // the reserve path, which re-promotes it.
  if (chosen != fresh) {
    EXPECT_FALSE(rig.nest.InPrimary(fresh));
  } else {
    EXPECT_TRUE(rig.nest.InPrimary(fresh));
  }
}

TEST(NestPolicyTest, AttachedTaskReclaimsCompactionEligibleCore) {
  NestParams params;
  params.p_remove_ticks = 2;
  NestRig rig(params);
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  rig.engine.RunUntil(rig.engine.Now() + 3 * kTickPeriod);
  ASSERT_TRUE(rig.nest.CompactionEligible(core));
  Task t;
  t.prev_cpu = core;
  t.prev_prev_cpu = core;  // attached
  EXPECT_EQ(rig.Wake(t, 0), core);
  EXPECT_TRUE(rig.nest.InPrimary(core));
  EXPECT_FALSE(rig.nest.CompactionEligible(core));
}

TEST(NestPolicyTest, CompactionDisabledNeverMarks) {
  NestParams params;
  params.enable_compaction = false;
  NestRig rig(params);
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  rig.engine.RunUntil(rig.engine.Now() + 20 * kTickPeriod);
  EXPECT_FALSE(rig.nest.CompactionEligible(core));
}

TEST(NestPolicyTest, SpinOnlyOnPrimaryCores) {
  NestParams params;
  params.s_max_ticks = 2;
  NestRig rig(params);
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  ASSERT_TRUE(rig.nest.InPrimary(core));
  EXPECT_EQ(rig.nest.IdleSpinTicks(core), 2);
  // Non-nest core: no spin.
  int outside = 0;
  while (rig.nest.InPrimary(outside) || rig.nest.InReserve(outside)) {
    ++outside;
  }
  EXPECT_EQ(rig.nest.IdleSpinTicks(outside), 0);
}

TEST(NestPolicyTest, SpinDisabledByAblation) {
  NestParams params;
  params.enable_spin = false;
  NestRig rig(params);
  Task setup;
  const int core = rig.nest.SelectCpuFork(setup, 0);
  Task again;
  rig.nest.SelectCpuFork(again, 0);
  EXPECT_EQ(rig.nest.IdleSpinTicks(core), 0);
}

TEST(NestPolicyTest, NoReserveModeAddsCfsCoresToPrimary) {
  NestParams params;
  params.enable_reserve = false;
  NestRig rig(params);
  Task t;
  const int cpu = rig.nest.SelectCpuFork(t, 0);
  EXPECT_TRUE(rig.nest.InPrimary(cpu));
  EXPECT_EQ(rig.nest.ReserveSize(), 0);
}

TEST(NestPolicyTest, ReservationFlagControlledByParam) {
  NestParams on;
  EXPECT_TRUE(NestPolicy(on).UsesPlacementReservation());
  NestParams off;
  off.enable_placement_reservation = false;
  EXPECT_FALSE(NestPolicy(off).UsesPlacementReservation());
}

TEST(NestPolicyTest, SearchPrefersAnchorDie) {
  NestRig rig;
  // Primary cores on both sockets: 1 (socket 0) and 4 (socket 1).
  // Build them via direct membership manipulation through selection:
  Task a;
  const int c0 = rig.nest.SelectCpuFork(a, 1);
  Task b;
  rig.nest.SelectCpuFork(b, 1);  // promote c0
  ASSERT_EQ(rig.kernel.topology().SocketOf(c0), 0);
  // Occupy everything on socket 0 except via fallback to socket 1.
  for (int cpu : rig.kernel.topology().CpusOnSocket(0)) {
    if (rig.kernel.CpuIdle(cpu)) {
      rig.Occupy(cpu);
    }
  }
  Task c;
  const int c1 = rig.nest.SelectCpuFork(c, 1);
  Task d;
  const int c1b = rig.nest.SelectCpuFork(d, 1);
  ASSERT_EQ(rig.kernel.topology().SocketOf(c1), 1);
  ASSERT_EQ(c1, c1b);
  ASSERT_TRUE(rig.nest.InPrimary(c1));
  // Now a task anchored on socket 1 must find the socket-1 primary core
  // first, even though c0's socket-0 core exists.
  Task t;
  t.prev_cpu = rig.kernel.topology().CpusOnSocket(1).front();
  const int chosen = rig.Wake(t, t.prev_cpu);
  EXPECT_EQ(rig.kernel.topology().SocketOf(chosen), 1);
}

TEST(NestPolicyTest, PrimarySizeCounts) {
  NestRig rig;
  EXPECT_EQ(rig.nest.PrimarySize(), 0);
  Task a;
  const int c = rig.nest.SelectCpuFork(a, 0);
  Task b;
  rig.nest.SelectCpuFork(b, 0);
  EXPECT_TRUE(rig.nest.InPrimary(c));
  EXPECT_EQ(rig.nest.PrimarySize(), 1);
}

}  // namespace
}  // namespace nestsim
