// Cluster serving layer (src/cluster/): the passthrough differential — a
// 1-machine cluster must reproduce the single-machine RunExperiment result
// exactly — plus router behaviour, serving metrics, and determinism.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/cluster/router.h"
#include "src/obs/sched_counters.h"
#include "src/workloads/requests.h"

namespace nestsim {
namespace {

RequestSpec SmallTraffic() {
  RequestSpec spec;
  spec.name = "test";
  spec.rate_per_s = 400.0;
  spec.duration_s = 0.2;
  spec.service_ms = 0.5;
  spec.service_sigma = 0.4;
  return spec;
}

ExperimentConfig SmallConfig(SchedulerKind scheduler) {
  ExperimentConfig config;
  config.machine = "amd-4650g-1s";
  config.scheduler = scheduler;
  config.seed = 5;
  return config;
}

// Every scalar the golden baselines gate on, compared exactly. The counters
// compare as their full JSON rendering, not just the digest, so a mismatch
// names the counter that moved.
void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_DOUBLE_EQ(a.underload_per_s, b.underload_per_s);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.tasks_created, b.tasks_created);
  EXPECT_EQ(SchedCountersJson(a.counters), SchedCountersJson(b.counters));
}

TEST(ClusterDifferentialTest, PassthroughSingleMachineIsDigestIdentical) {
  const RequestWorkload workload(SmallTraffic());
  for (const SchedulerKind scheduler :
       {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove}) {
    const ExperimentConfig config = SmallConfig(scheduler);
    const ExperimentResult single = RunExperiment(config, workload);
    const ExperimentResult fleet =
        RunClusterExperiment(ClusterSpec{1, "passthrough"}, config, workload);
    SCOPED_TRACE(SchedulerKindKey(scheduler));
    ExpectSameResult(single, fleet);
    // The cluster path additionally reports serving metrics.
    EXPECT_EQ(fleet.cluster.num_machines, 1);
    EXPECT_GT(fleet.cluster.requests_offered, 0u);
    EXPECT_EQ(fleet.cluster.requests_completed, fleet.cluster.requests_offered);
  }
}

TEST(ClusterDifferentialTest, ClusterRunIsRepeatable) {
  const RequestWorkload workload(SmallTraffic());
  const ExperimentConfig config = SmallConfig(SchedulerKind::kNest);
  const ClusterSpec cluster{3, "least-loaded"};
  const ExperimentResult a = RunClusterExperiment(cluster, config, workload);
  const ExperimentResult b = RunClusterExperiment(cluster, config, workload);
  ExpectSameResult(a, b);
  EXPECT_DOUBLE_EQ(a.cluster.p99_ms, b.cluster.p99_ms);
  ASSERT_EQ(a.cluster.machines.size(), b.cluster.machines.size());
  for (size_t m = 0; m < a.cluster.machines.size(); ++m) {
    EXPECT_EQ(a.cluster.machines[m].requests_routed, b.cluster.machines[m].requests_routed);
  }
}

TEST(ClusterRunTest, RoundRobinSpreadsArrivalsEvenly) {
  const RequestWorkload workload(SmallTraffic());
  const ExperimentResult r = RunClusterExperiment(
      ClusterSpec{2, "round-robin"}, SmallConfig(SchedulerKind::kCfs), workload);
  ASSERT_EQ(r.cluster.machines.size(), 2u);
  const uint64_t m0 = r.cluster.machines[0].requests_routed;
  const uint64_t m1 = r.cluster.machines[1].requests_routed;
  EXPECT_EQ(m0 + m1, r.cluster.requests_offered);  // fanout 0: one part each
  EXPECT_LE(m0 > m1 ? m0 - m1 : m1 - m0, 1u);      // strict alternation
}

TEST(ClusterRunTest, ServingMetricsAreCoherent) {
  RequestSpec spec = SmallTraffic();
  spec.fanout = 2;
  spec.io_pause_ms = 0.2;
  const RequestWorkload workload(spec);
  const ExperimentResult r = RunClusterExperiment(
      ClusterSpec{2, "round-robin"}, SmallConfig(SchedulerKind::kNest), workload);
  const ClusterStats& c = r.cluster;
  EXPECT_EQ(c.num_machines, 2);
  EXPECT_EQ(c.router, "round-robin");
  EXPECT_GT(c.requests_offered, 0u);
  EXPECT_EQ(c.requests_completed, c.requests_offered);  // run drains fully
  // Percentiles are nondecreasing and bounded by the max.
  EXPECT_GT(c.p50_ms, 0.0);
  EXPECT_LE(c.p50_ms, c.p99_ms);
  EXPECT_LE(c.p99_ms, c.p999_ms);
  EXPECT_LE(c.p999_ms, c.max_ms);
  // Queueing + service breakdown: both sides positive, each below the
  // end-to-end mean (parts run concurrently, so they need not sum to it).
  EXPECT_GT(c.mean_service_ms, 0.0);
  EXPECT_GE(c.mean_queue_ms, 0.0);
  // With fanout 2 every request contributes three routed parts.
  uint64_t routed = 0;
  for (const ClusterMachineStats& m : c.machines) {
    routed += m.requests_routed;
    EXPECT_GE(m.utilisation, 0.0);
    EXPECT_LE(m.utilisation, 1.0);
  }
  EXPECT_EQ(routed, c.requests_offered * 3);
}

TEST(ClusterRunTest, UnknownRouterThrows) {
  const RequestWorkload workload(SmallTraffic());
  EXPECT_THROW(RunClusterExperiment(ClusterSpec{2, "no-such-router"},
                                    SmallConfig(SchedulerKind::kCfs), workload),
               std::runtime_error);
}

TEST(ClusterRunTest, NonRequestWorkloadThrows) {
  // Any closed-loop workload must be rejected: the cluster runner owns the
  // injection schedule and cannot replay arbitrary Setup() side effects.
  class NotRequests : public Workload {
   public:
    std::string name() const override { return "not-requests"; }
    void Setup(Kernel&, Rng&) const override {}
  };
  EXPECT_THROW(RunClusterExperiment(ClusterSpec{1, "passthrough"},
                                    SmallConfig(SchedulerKind::kCfs), NotRequests()),
               std::runtime_error);
}

TEST(RouterTest, RegistryCoversEveryName) {
  const std::vector<std::string> names = RouterNames();
  EXPECT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    const auto router = MakeRouter(name);
    ASSERT_NE(router, nullptr) << name;
    EXPECT_EQ(router->name(), name);
  }
  EXPECT_EQ(MakeRouter("no-such-router"), nullptr);
}

TEST(RouterTest, LeastLoadedPrefersTheIdlerMachine) {
  DomainGroup group(2);
  const ExperimentConfig config = SmallConfig(SchedulerKind::kCfs);
  ClusterModel model(&group, config, 2);
  model.machine(0).kernel.Start();
  model.machine(1).kernel.Start();

  const auto router = MakeRouter("least-loaded");
  // Both idle: lowest index wins.
  EXPECT_EQ(router->Route(model.kernels(), model.hardware()), 0);

  // Park a runnable task on machine 0; the router must now pick machine 1.
  ProgramBuilder builder("busy");
  builder.ComputeMs(5.0);
  model.machine(0).kernel.InjectTask(builder.Build(), "busy", /*tag=*/0);
  EXPECT_GT(model.machine(0).kernel.runnable_tasks(), 0);
  EXPECT_EQ(router->Route(model.kernels(), model.hardware()), 1);
}

TEST(RequestPlanTest, PlanIsDeterministicAndOrdered) {
  const RequestWorkload workload(SmallTraffic());
  Rng rng_a(42), rng_b(42);
  const RequestPlan a = workload.BuildPlan(rng_a);
  const RequestPlan b = workload.BuildPlan(rng_b);
  ASSERT_EQ(a.parts.size(), b.parts.size());
  EXPECT_GT(a.requests, 0u);
  SimTime prev = 0;
  for (size_t i = 0; i < a.parts.size(); ++i) {
    EXPECT_EQ(a.parts[i].arrival, b.parts[i].arrival);
    EXPECT_EQ(a.parts[i].name, b.parts[i].name);
    EXPECT_GE(a.parts[i].arrival, prev);  // arrival order
    prev = a.parts[i].arrival;
  }
}

// Machine crashes with requests in flight (docs/FAULTS.md): the dead machine
// stops taking traffic, its in-flight work is killed and accounted as failed
// requests, and the fleet result stays bit-deterministic.
TEST(ClusterFaultTest, MachineCrashFailsOverInFlightRequests) {
  // Heavy enough traffic that a crash instant always finds live tasks to
  // kill; SmallTraffic leaves the machines idle almost all the time.
  RequestSpec spec = SmallTraffic();
  spec.rate_per_s = 4000.0;
  spec.service_ms = 2.0;
  spec.duration_s = 0.1;
  const RequestWorkload workload(spec);
  ExperimentConfig config = SmallConfig(SchedulerKind::kNest);
  config.fault.machine_fail_rate_per_s = 30.0;
  config.fault.machine_downtime_ms = 0.0;  // permanent: a crashed box stays dark
  const ClusterSpec cluster{2, "least-loaded"};
  const ExperimentResult a = RunClusterExperiment(cluster, config, workload);
  const ExperimentResult b = RunClusterExperiment(cluster, config, workload);
  ExpectSameResult(a, b);
  EXPECT_GT(a.counters.faults_injected, 0u);  // kMachineCrash counts as a fault
  EXPECT_GT(a.resilience.tasks_killed, 0u);
  EXPECT_GT(a.resilience.requests_failed, 0u);
  EXPECT_LT(a.cluster.requests_completed, a.cluster.requests_offered);
}

// Replication without faults: every part still completes (the quorum winner),
// losers are reaped as wasted — not failed — work, and the counters see one
// quorum join per reap opportunity.
TEST(ClusterFaultTest, ReplicaQuorumJoinsAndReapsTheLosers) {
  // Copies of a part share one pre-drawn program, so on idle machines both
  // exit at the same instant and the reap finds the loser already dead.
  // Saturate a single machine instead: queueing skews the copies' start
  // times, the earlier copy wins the quorum, and the straggler is reaped
  // mid-flight with runtime on the books.
  RequestSpec spec = SmallTraffic();
  spec.rate_per_s = 4000.0;
  spec.service_ms = 1.0;
  spec.arrivals = ArrivalKind::kBursty;
  spec.duration_s = 0.1;
  const RequestWorkload workload(spec);
  ExperimentConfig config = SmallConfig(SchedulerKind::kCfs);
  config.fault.replicas = 2;
  config.fault.quorum = 1;
  const ExperimentResult r =
      RunClusterExperiment(ClusterSpec{1, "passthrough"}, config, workload);
  EXPECT_GT(r.counters.replica_quorum_joins, 0u);
  EXPECT_GT(r.resilience.replicas_reaped, 0u);
  // A loser can exit on its own in the same instant the quorum lands, so
  // reaps can trail joins but never exceed them.
  EXPECT_GE(r.counters.replica_quorum_joins, r.resilience.replicas_reaped);
  EXPECT_EQ(r.cluster.requests_completed, r.cluster.requests_offered);
  EXPECT_EQ(r.resilience.requests_failed, 0u);
  EXPECT_GT(r.resilience.wasted_replica_ms, 0.0);
}

TEST(RequestPlanTest, BurstyOffersMoreThanPoissonAtSameBaseRate) {
  RequestSpec poisson = SmallTraffic();
  poisson.duration_s = 1.0;
  RequestSpec bursty = poisson;
  bursty.arrivals = ArrivalKind::kBursty;
  Rng rng_a(7), rng_b(7);
  const RequestPlan p = RequestWorkload(poisson).BuildPlan(rng_a);
  const RequestPlan b = RequestWorkload(bursty).BuildPlan(rng_b);
  EXPECT_GT(b.requests, p.requests);
}

}  // namespace
}  // namespace nestsim
