#include "src/obs/perfetto_trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/cfs/cfs_policy.h"
#include "src/core/experiment.h"
#include "src/governors/governors.h"
#include "src/obs/json_check.h"
#include "src/workloads/configure.h"

namespace nestsim {
namespace {

ConfigureWorkload SmallWorkload() {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  return ConfigureWorkload(spec);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Runs a traced experiment and returns the written trace document.
std::string CaptureTrace(SchedulerKind kind, const std::string& label) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.trace_dir = ::testing::TempDir() + "nestsim-obs-test";
  config.trace_label = label;
  const ExperimentResult r = RunExperiment(config, SmallWorkload());
  EXPECT_FALSE(r.trace_file.empty());
  return ReadFile(r.trace_file);
}

TEST(PerfettoTraceTest, WritesValidJson) {
  const std::string doc = CaptureTrace(SchedulerKind::kNest, "valid-json");
  ASSERT_FALSE(doc.empty());
  std::string error;
  EXPECT_TRUE(JsonValid(doc, &error)) << error;
}

TEST(PerfettoTraceTest, ContainsDocumentedTracksAndEvents) {
  const std::string doc = CaptureTrace(SchedulerKind::kNest, "tracks");
  // Process/track metadata.
  EXPECT_NE(doc.find("\"cpu activity\""), std::string::npos);
  EXPECT_NE(doc.find("\"core frequency (GHz)\""), std::string::npos);
  EXPECT_NE(doc.find("\"socket power & turbo\""), std::string::npos);
  EXPECT_NE(doc.find("\"cpu 0\""), std::string::npos);
  // Counter tracks.
  EXPECT_NE(doc.find("\"core0\""), std::string::npos);
  EXPECT_NE(doc.find("\"socket0 W\""), std::string::npos);
  EXPECT_NE(doc.find("\"socket0 turbo licenses\""), std::string::npos);
  // Decision events: a Nest run must place, promote, and flow select→enqueue.
  EXPECT_NE(doc.find("\"place:"), std::string::npos);
  EXPECT_NE(doc.find("\"nest:promote\""), std::string::npos);
  EXPECT_NE(doc.find("\"place-enqueue\""), std::string::npos);
  EXPECT_NE(doc.find("\"enqueue\""), std::string::npos);
  // Execution stints are complete slices.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
}

TEST(PerfettoTraceTest, TimestampsAreMonotoneAfterFinish) {
  const std::string doc = CaptureTrace(SchedulerKind::kCfs, "monotone");
  double prev = -1.0;
  int samples = 0;
  size_t pos = 0;
  while ((pos = doc.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::stod(doc.substr(pos, 32));
    EXPECT_GE(ts, prev) << "sample " << samples;
    prev = ts;
    ++samples;
  }
  EXPECT_GT(samples, 100);
}

TEST(PerfettoTraceTest, TracingDoesNotChangeBehaviour) {
  const ConfigureWorkload workload = SmallWorkload();
  ExperimentConfig off;
  off.scheduler = SchedulerKind::kNest;
  off.seed = 3;
  const ExperimentResult a = RunExperiment(off, workload);

  ExperimentConfig on = off;
  on.trace_dir = ::testing::TempDir() + "nestsim-obs-test";
  on.trace_label = "behaviour";
  const ExperimentResult b = RunExperiment(on, workload);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.cpus_used, b.cpus_used);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_TRUE(a.trace_file.empty());
  EXPECT_FALSE(b.trace_file.empty());
}

TEST(PerfettoTraceTest, EventCapCountsDrops) {
  Engine engine;
  HardwareModel hw(&engine, MachineByName("intel-6130-2s"));
  // No kernel run needed: the constructor alone seeds one counter event per
  // physical core plus metadata, so a tiny cap must drop the excess.
  CfsPolicy cfs;
  PerformanceGovernor governor;
  Kernel kernel(&engine, &hw, &cfs, &governor);
  PerfettoTraceWriter writer(&kernel, /*max_events=*/1);
  EXPECT_GT(writer.dropped(), 0u);
  EXPECT_LE(writer.event_count() - (3 + hw.topology().num_cpus()), 1u);
}

}  // namespace
}  // namespace nestsim
