#include "src/obs/json_check.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(JsonCheckTest, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e-3",
           "\"a string with \\\"escapes\\\" and \\u00e9\"",
           "{\"a\":[1,2.5,true,null,\"x\"],\"b\":{\"nested\":[]}}",
           "  [ 1 , 2 ]  ",
       }) {
    std::string error;
    EXPECT_TRUE(JsonValid(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonCheckTest, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,]",
           "{\"a\":}",
           "{\"a\" 1}",
           "{a:1}",
           "01",
           "1.",
           "1e",
           "\"unterminated",
           "\"bad \\x escape\"",
           "nul",
           "{} trailing",
           "[1] [2]",
       }) {
    EXPECT_FALSE(JsonValid(doc)) << "accepted: " << doc;
  }
}

TEST(JsonCheckTest, ErrorNamesTheOffset) {
  std::string error;
  ASSERT_FALSE(JsonValid("[1,]", &error));
  EXPECT_NE(error.find("byte"), std::string::npos);
}

TEST(JsonCheckTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValid(deep));
}

}  // namespace
}  // namespace nestsim
