#include "src/obs/json_check.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(JsonCheckTest, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e-3",
           "\"a string with \\\"escapes\\\" and \\u00e9\"",
           "{\"a\":[1,2.5,true,null,\"x\"],\"b\":{\"nested\":[]}}",
           "  [ 1 , 2 ]  ",
       }) {
    std::string error;
    EXPECT_TRUE(JsonValid(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonCheckTest, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,]",
           "{\"a\":}",
           "{\"a\" 1}",
           "{a:1}",
           "01",
           "1.",
           "1e",
           "\"unterminated",
           "\"bad \\x escape\"",
           "nul",
           "{} trailing",
           "[1] [2]",
       }) {
    EXPECT_FALSE(JsonValid(doc)) << "accepted: " << doc;
  }
}

TEST(JsonCheckTest, ErrorNamesTheOffset) {
  std::string error;
  ASSERT_FALSE(JsonValid("[1,]", &error));
  EXPECT_NE(error.find("byte"), std::string::npos);
}

TEST(JsonCheckTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValid(deep));
}

TEST(JsonParseTest, BuildsTheValueTree) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("{\"a\":[1,2.5,true,null,\"x\"],\"b\":{\"nested\":[]}}", &v));
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 2u);

  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_TRUE(a->items[0].is_number());
  EXPECT_DOUBLE_EQ(a->items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->items[1].number, 2.5);
  EXPECT_TRUE(a->items[2].is_bool());
  EXPECT_TRUE(a->items[2].boolean);
  EXPECT_TRUE(a->items[3].is_null());
  EXPECT_TRUE(a->items[4].is_string());
  EXPECT_EQ(a->items[4].string, "x");

  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_object());
  EXPECT_NE(b->Find("nested"), nullptr);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, PreservesMemberOrderAndDuplicates) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("{\"z\":1,\"a\":2,\"z\":3}", &v));
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  // Find returns the first occurrence.
  EXPECT_DOUBLE_EQ(v.Find("z")->number, 1.0);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("\"a\\\"b\\\\c\\/d\\n\\t\\u0041\\u00e9\"", &v));
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string, "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParseTest, DecodesSurrogatePairs) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("\"\\ud83d\\ude00\"", &v));  // U+1F600
  EXPECT_EQ(v.string, "\xf0\x9f\x98\x80");
  // A lone surrogate decodes to the replacement character instead of garbage.
  ASSERT_TRUE(JsonParse("\"\\ud83d!\"", &v));
  EXPECT_EQ(v.string, "\xef\xbf\xbd!");
}

TEST(JsonParseTest, ParsesScalarsAndNumbers) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("-12.5e-3", &v));
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.number, -0.0125);
  ASSERT_TRUE(JsonParse("false", &v));
  EXPECT_TRUE(v.is_bool());
  EXPECT_FALSE(v.boolean);
  ASSERT_TRUE(JsonParse("null", &v));
  EXPECT_TRUE(v.is_null());
}

TEST(JsonParseTest, RoundTripsSeventeenDigitDoubles) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("6.9179590801107187", &v));
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v.number);
  EXPECT_STREQ(buf, "6.9179590801107187");
}

TEST(JsonParseTest, FailureResetsTheSinkAndNamesTheError) {
  JsonValue v;
  ASSERT_TRUE(JsonParse("[1,2]", &v));
  std::string error;
  ASSERT_FALSE(JsonParse("[1,", &v, &error));
  EXPECT_TRUE(v.is_null());  // no stale tree after a failed parse
  EXPECT_TRUE(v.items.empty());
  EXPECT_FALSE(error.empty());
}

TEST(JsonParseTest, TypeNamesAreStable) {
  EXPECT_STREQ(JsonTypeName(JsonValue::Type::kObject), "object");
  EXPECT_STREQ(JsonTypeName(JsonValue::Type::kArray), "array");
  EXPECT_STREQ(JsonTypeName(JsonValue::Type::kString), "string");
}

}  // namespace
}  // namespace nestsim
