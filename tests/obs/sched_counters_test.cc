#include "src/obs/sched_counters.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/campaign/campaign.h"
#include "src/core/experiment.h"
#include "src/obs/json_check.h"
#include "src/workloads/configure.h"

namespace nestsim {
namespace {

ConfigureSpec SmallSpec() {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  return spec;
}

uint64_t TotalPlacements(const SchedCounters& c) {
  return std::accumulate(c.placements.begin(), c.placements.end(), uint64_t{0});
}

TEST(SchedCountersTest, PopulatedByNestRun) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kNest;
  const ExperimentResult r = RunExperiment(config, ConfigureWorkload(SmallSpec()));
  const SchedCounters& c = r.counters;

  EXPECT_GT(TotalPlacements(c), 0u);
  // Every placement is either a fork or a wake.
  EXPECT_EQ(c.fork_placements + c.wake_placements, TotalPlacements(c));
  // SpawnInitial accounts for exactly one kInitial placement.
  EXPECT_EQ(c.placements[static_cast<int>(PlacementPath::kInitial)], 1u);
  // A Nest run grows a nest and lands tasks in it.
  EXPECT_GT(c.nest_promotions, 0u);
  EXPECT_GT(c.NestHits(), 0u);
  // Each ended spin either converted or expired.
  EXPECT_GE(c.spin_starts, c.spin_converted + c.spin_expired);
  // DVFS moved at least once on a real machine model.
  EXPECT_GT(c.freq_ramps_up, 0u);
}

TEST(SchedCountersTest, CfsRunTakesOnlyCfsPaths) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCfs;
  const ExperimentResult r = RunExperiment(config, ConfigureWorkload(SmallSpec()));
  const SchedCounters& c = r.counters;
  EXPECT_GT(c.placements[static_cast<int>(PlacementPath::kCfsFork)], 0u);
  EXPECT_EQ(c.NestHits(), 0u);
  EXPECT_EQ(c.NestMisses(), 0u);
  EXPECT_EQ(c.nest_promotions, 0u);
  EXPECT_EQ(c.spin_starts, 0u);
}

TEST(SchedCountersTest, DeterministicForSameSeed) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kNest;
  config.seed = 11;
  const ConfigureWorkload workload(SmallSpec());
  const ExperimentResult a = RunExperiment(config, workload);
  const ExperimentResult b = RunExperiment(config, workload);
  EXPECT_TRUE(a.counters == b.counters);
}

TEST(SchedCountersTest, AddSumsFieldwise) {
  SchedCounters a;
  a.placements[static_cast<int>(PlacementPath::kCfsWake)] = 3;
  a.spin_starts = 2;
  a.wc_violation_ns = 100;
  SchedCounters b;
  b.placements[static_cast<int>(PlacementPath::kCfsWake)] = 4;
  b.spin_starts = 5;
  b.nest_compactions = 1;
  a.Add(b);
  EXPECT_EQ(a.placements[static_cast<int>(PlacementPath::kCfsWake)], 7u);
  EXPECT_EQ(a.spin_starts, 7u);
  EXPECT_EQ(a.nest_compactions, 1u);
  EXPECT_EQ(a.wc_violation_ns, 100u);
}

TEST(SchedCountersTest, JsonIsValidAndSchemaStable) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kNest;
  const ExperimentResult r = RunExperiment(config, ConfigureWorkload(SmallSpec()));
  const std::string json = SchedCountersJson(r.counters);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  // Every documented key appears even when zero.
  for (const char* key : {
           "placements", "fork_placements", "wake_placements", "reservation_collisions",
           "nest_promotions", "nest_demotions", "nest_compactions", "nest_reserve_adds",
           "nest_reserve_full_drops", "spin_starts", "spin_converted", "spin_expired",
           "migrations_newidle", "migrations_periodic", "migrations_policy", "freq_ramps_up",
           "freq_ramps_down", "wc_violation_ns", "wc_violation_episodes",
       }) {
    EXPECT_NE(json.find(std::string("\"") + key + "\":"), std::string::npos) << key;
  }
  for (int i = 0; i < kNumPlacementPaths; ++i) {
    // The cache-aware placement path is omitted when unused (a plain Nest run
    // never takes it) so pre-cache golden digests stay byte-identical. The
    // fault-evacuation path follows the same convention for pre-fault digests.
    if (static_cast<PlacementPath>(i) == PlacementPath::kNestCacheWarm) {
      EXPECT_EQ(json.find("\"nest_cache_warm\":"), std::string::npos);
      continue;
    }
    if (static_cast<PlacementPath>(i) == PlacementPath::kFaultEvacuate) {
      EXPECT_EQ(json.find("\"fault_evacuate\":"), std::string::npos);
      continue;
    }
    // The prediction-layer paths (docs/PREDICTION.md) are zero-omitted the
    // same way: a plain Nest run never takes them.
    if (static_cast<PlacementPath>(i) == PlacementPath::kNestPredicted) {
      EXPECT_EQ(json.find("\"nest_predicted\":"), std::string::npos);
      continue;
    }
    if (static_cast<PlacementPath>(i) == PlacementPath::kNestOracleWarm) {
      EXPECT_EQ(json.find("\"nest_oracle_warm\":"), std::string::npos);
      continue;
    }
    const std::string key =
        std::string("\"") + PlacementPathName(static_cast<PlacementPath>(i)) + "\":";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Same for the cache counter block: absent without warmth tracking.
  EXPECT_EQ(json.find("\"cache_warm_hits\":"), std::string::npos);
}

TEST(SchedCountersTest, NestSummaryMentionsTheChurn) {
  SchedCounters c;
  c.placements[static_cast<int>(PlacementPath::kNestPrimary)] = 9;
  c.nest_promotions = 4;
  const std::string line = NestSummary(c);
  EXPECT_NE(line.find("nest hit/miss 9/0"), std::string::npos);
  EXPECT_NE(line.find("promote/demote/compact 4/0/0"), std::string::npos);
}

std::vector<JobOutcome> RunCounterCampaign(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.progress = false;
  Campaign campaign("counters-test", options);
  auto model = std::make_shared<ConfigureWorkload>(SmallSpec());
  for (SchedulerKind kind :
       {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove}) {
    Job job;
    job.workload = "gcc";
    job.variant = SchedulerKindName(kind);
    job.config.scheduler = kind;
    job.model = model;
    job.repetitions = 2;
    campaign.Add(std::move(job));
  }
  return campaign.Run();
}

TEST(SchedCountersTest, IdenticalAcrossCampaignWorkerCounts) {
  const std::vector<JobOutcome> serial = RunCounterCampaign(1);
  const std::vector<JobOutcome> pooled = RunCounterCampaign(8);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(pooled[i].ok());
    ASSERT_EQ(serial[i].result.runs.size(), pooled[i].result.runs.size());
    for (size_t r = 0; r < serial[i].result.runs.size(); ++r) {
      EXPECT_TRUE(serial[i].result.runs[r].counters == pooled[i].result.runs[r].counters)
          << "job " << i << " run " << r;
    }
  }
}

}  // namespace
}  // namespace nestsim
