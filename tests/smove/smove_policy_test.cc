#include "src/smove/smove_policy.h"

#include <gtest/gtest.h>

#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// A machine whose frequency can actually vary, so Smove has something to
// observe: min 1.0, nominal 2.0, turbo 3.0.
MachineSpec VariableMachine() {
  MachineSpec m = FixedFreqMachine(2, 4, 2, 1.0);
  m.nominal_freq_ghz = 2.0;
  m.turbo = TurboLadder({3.0, 3.0, 2.8, 2.6});
  m.ramp_up_ghz_per_ms = 2.0;
  m.ramp_down_ghz_per_ms = 2.0;
  m.idle_drift_ghz_per_ms = 0.1;
  m.busy_downshift_ghz_per_ms = 0.1;
  m.arrival_activity_floor = 0.2;
  m.activity_halflife = 2 * kMillisecond;
  return m;
}

struct SmoveRig {
  SmoveRig() : hw(&engine, VariableMachine()), kernel(&engine, &hw, &smove, &governor) {
    kernel.Start();
  }

  Engine engine;
  HardwareModel hw;
  SchedutilGovernor governor;
  SmovePolicy smove;
  Kernel kernel;
};

TEST(SmovePolicyTest, NoParkWhenSamplesLookFine) {
  SmoveRig rig;
  // All stale samples boot at nominal: nothing looks slow, so Smove must
  // behave exactly like CFS (the paper's Speed Shift observation).
  Task child;
  rig.smove.SelectCpuFork(child, 0);
  EXPECT_EQ(rig.smove.moves_armed(), 0);
}

TEST(SmovePolicyTest, ParksOnParentWhenChosenCoreSampledSlow) {
  SmoveRig rig;
  // Warm up cpu 0 (parent core) and let a tick record its high frequency;
  // record a *low* sample for every other core by sampling while they are
  // busy at min frequency.
  ProgramBuilder hog("hog");
  hog.Compute(1e12);
  rig.kernel.SpawnInitial(hog.Build(), "hog", 0, 0);
  rig.engine.RunUntil(30 * kMillisecond);
  rig.hw.SampleTick();
  ASSERT_GT(rig.hw.FreqAtLastTickGhz(0), 2.0);

  // Give cpu 1 a stale low sample: busy it briefly and sample right away.
  rig.hw.SetThreadBusy(1, true);
  rig.hw.SampleTick();
  rig.hw.SetThreadBusy(1, false);
  // Overwrite: force the sample by directly checking it is low.
  const double sample = rig.hw.FreqAtLastTickGhz(1);
  if (sample < 0.8 * 2.0) {
    Task child;
    child.tid = 99;
    child.prev_cpu = 1;
    const int chosen = rig.smove.SelectCpuFork(child, 0);
    EXPECT_EQ(chosen, 0);  // parked on the parent's fast core
    EXPECT_EQ(rig.smove.moves_armed(), 1);
  }
}

TEST(SmovePolicyTest, TimerMovesTaskParkedBehindBusyParent) {
  // Force the heuristic with a permissive threshold, run a real fork whose
  // parent keeps computing: the child gets parked on the parent's core,
  // cannot run, and the fallback timer must migrate it to the CFS choice.
  Engine engine;
  HardwareModel hw(&engine, VariableMachine());
  SchedutilGovernor governor;
  SmovePolicy::Params params;
  params.low_freq_fraction = 1.2;  // "low" = 2.4 GHz: boot samples (2.0) are low
  params.move_delay = 50 * kMicrosecond;
  SmovePolicy smove(params);
  Kernel kernel(&engine, &hw, &smove, &governor);
  kernel.Start();

  // Warm the parent's core so its tick sample is high.
  ProgramBuilder parent("parent");
  parent.Compute(60e6);  // ~20-30 ms, crosses several ticks at ~3 GHz
  ProgramBuilder child("child");
  child.Compute(2e6);
  parent.Fork(child.Build()).Compute(30e6).JoinChildren();
  kernel.SpawnInitial(parent.Build(), "parent", 0, 0);

  while (kernel.live_tasks() > 0 && engine.Now() < kSecond) {
    ASSERT_TRUE(engine.Step());
  }
  ASSERT_EQ(kernel.live_tasks(), 0);
  EXPECT_GE(smove.moves_armed(), 1);
  EXPECT_GE(smove.moves_fired(), 1);  // parent kept running past the delay
}

TEST(SmovePolicyTest, WakePathDelegatesToCfsWhenNothingSlow) {
  SmoveRig rig;
  Task t;
  t.prev_cpu = 3;
  WakeContext ctx;
  ctx.waker_cpu = 0;
  const int cpu = rig.smove.SelectCpuWake(t, ctx);
  EXPECT_EQ(cpu, 3);  // idle prev, CFS behaviour
  EXPECT_EQ(rig.smove.moves_armed(), 0);
}

}  // namespace
}  // namespace nestsim
