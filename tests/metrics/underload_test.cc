#include "src/metrics/underload.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "src/kernel/policy.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// Policy scripted to return a fresh CPU for every placement — guaranteed
// dispersal, hence guaranteed underload.
class RoundRobinPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "rr"; }
  int SelectCpuFork(Task&, int) override { return Next(); }
  int SelectCpuWake(Task&, const WakeContext&) override { return Next(); }

 private:
  int Next() { return next_++ % kernel_->topology().num_cpus(); }
  int next_ = 1;
};

// Policy that reuses one CPU — zero dispersal.
class SameCpuPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "same"; }
  int SelectCpuFork(Task&, int) override { return 1; }
  int SelectCpuWake(Task&, const WakeContext&) override { return 1; }
};

struct Rig {
  explicit Rig(std::unique_ptr<SchedulerPolicy> p)
      : hw(&engine, FixedFreqMachine(1, 8, 1)),
        policy(std::move(p)),
        kernel(&engine, &hw, policy.get(), &governor),
        tracker(&kernel, /*record_series=*/true) {
    kernel.AddObserver(&tracker);
    kernel.Start();
  }

  void RunSerialChain(int tasks) {
    ProgramBuilder child("c");
    child.Compute(2e6);
    ProgramBuilder parent("p");
    for (int i = 0; i < tasks; ++i) {
      parent.Compute(0.2e6).Fork(child.Build()).JoinChildren();
    }
    kernel.SpawnInitial(parent.Build(), "p", 0, 0);
    while (kernel.live_tasks() > 0) {
      ASSERT_TRUE(engine.Step());
    }
  }

  Engine engine;
  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  PerformanceGovernor governor;
  Kernel kernel;
  UnderloadTracker tracker;
};

TEST(UnderloadTest, DispersalProducesUnderload) {
  Rig rig(std::make_unique<RoundRobinPolicy>());
  rig.RunSerialChain(30);
  EXPECT_GT(rig.tracker.TotalUnderload(), 10.0);
}

TEST(UnderloadTest, PerfectReuseProducesNoUnderload) {
  // A serial fork/join chain placed on one CPU: parent and child overlap as
  // runnable at fork time, so 2 cores used == 2 max runnable.
  Rig rig(std::make_unique<SameCpuPolicy>());
  rig.RunSerialChain(30);
  EXPECT_LE(rig.tracker.TotalUnderload(), 1.0);
}

TEST(UnderloadTest, PerSecondNormalisation) {
  Rig rig(std::make_unique<RoundRobinPolicy>());
  rig.RunSerialChain(30);
  const SimTime end = rig.engine.Now();
  EXPECT_NEAR(rig.tracker.UnderloadPerSecond(end),
              rig.tracker.TotalUnderload() / ToSeconds(end), 1e-6);
}

TEST(UnderloadTest, SeriesCoversRun) {
  Rig rig(std::make_unique<RoundRobinPolicy>());
  rig.RunSerialChain(30);
  ASSERT_FALSE(rig.tracker.series().empty());
  // One entry per tick interval; times ascend.
  double last = -1.0;
  for (const auto& [t, u] : rig.tracker.series()) {
    EXPECT_GT(t, last);
    EXPECT_GE(u, 0.0);
    last = t;
  }
}

TEST(UnderloadTest, CpusEverUsedTracksPlacements) {
  Rig rr(std::make_unique<RoundRobinPolicy>());
  rr.RunSerialChain(20);
  EXPECT_GT(rr.tracker.CpusEverUsed().size(), 4u);

  Rig same(std::make_unique<SameCpuPolicy>());
  same.RunSerialChain(20);
  EXPECT_LE(same.tracker.CpusEverUsed().size(), 2u);  // root cpu + cpu 1
}

TEST(UnderloadTest, ZeroDurationIsZeroRate) {
  Rig rig(std::make_unique<SameCpuPolicy>());
  EXPECT_DOUBLE_EQ(rig.tracker.UnderloadPerSecond(rig.engine.Now()), 0.0);
}

}  // namespace
}  // namespace nestsim
