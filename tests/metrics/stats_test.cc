#include "src/metrics/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nestsim {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(Mean({}), 0.0); }

TEST(StatsTest, Mean) { EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0); }

TEST(StatsTest, StddevOfSingleIsZero) { EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0); }

TEST(StatsTest, StddevSample) {
  // Sample stddev of {2,4,4,4,5,5,7,9} with n-1: sqrt(32/7).
  EXPECT_NEAR(Stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, PercentileEdges) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25);
}

TEST(StatsTest, PercentileEmpty) { EXPECT_DOUBLE_EQ(Percentile({}, 99), 0.0); }

TEST(StatsTest, SpeedupPositiveWhenFaster) {
  EXPECT_NEAR(SpeedupPercent(2.0, 1.0), 100.0, 1e-9);
  EXPECT_NEAR(SpeedupPercent(1.1, 1.0), 10.0, 1e-9);
}

TEST(StatsTest, SpeedupNegativeWhenSlower) {
  EXPECT_NEAR(SpeedupPercent(1.0, 2.0), -50.0, 1e-9);
}

TEST(StatsTest, SpeedupZeroBaselineGuard) { EXPECT_DOUBLE_EQ(SpeedupPercent(1.0, 0.0), 0.0); }

TEST(StatsTest, ImprovementForRates) {
  EXPECT_NEAR(ImprovementPercent(100.0, 120.0), 20.0, 1e-9);
  EXPECT_NEAR(ImprovementPercent(100.0, 80.0), -20.0, 1e-9);
}

}  // namespace
}  // namespace nestsim
