#include "src/metrics/work_conservation.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// Pins everything to one CPU so tasks queue while other CPUs idle.
class PinnedPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "pinned"; }
  int SelectCpuFork(Task&, int) override { return 0; }
  int SelectCpuWake(Task&, const WakeContext&) override { return 0; }
};

struct WcRig {
  explicit WcRig(std::unique_ptr<SchedulerPolicy> p, bool balancing)
      : hw(&engine, FixedFreqMachine(1, 4, 1)),
        policy(std::move(p)),
        kernel(&engine, &hw, policy.get(), &governor, Params(balancing)),
        tracker(&kernel) {
    kernel.AddObserver(&tracker);
    kernel.Start();
  }

  static Kernel::Params Params(bool balancing) {
    Kernel::Params p;
    p.placement_latency = 0;
    p.fork_cost_work = 0;
    p.enable_newidle_balance = balancing;
    p.enable_periodic_balance = balancing;
    return p;
  }

  void RunParallelBatch() {
    ProgramBuilder worker("w");
    worker.Compute(20e6);
    ProgramBuilder parent("p");
    // Space the forks out so the selections see each other's enqueues
    // (otherwise the zero-time fork burst exercises the §3.4 placement race
    // instead of the fork path).
    for (int i = 0; i < 3; ++i) {
      parent.Fork(worker.Build()).Compute(50e3);
    }
    parent.JoinChildren();
    kernel.SpawnInitial(parent.Build(), "p", 0, 0);
    while (kernel.live_tasks() > 0) {
      ASSERT_TRUE(engine.Step());
    }
  }

  Engine engine;
  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  PerformanceGovernor governor;
  Kernel kernel;
  WorkConservationTracker tracker;
};

TEST(WorkConservationTest, PinnedPolicyWithoutBalancingViolates) {
  WcRig rig(std::make_unique<PinnedPolicy>(), /*balancing=*/false);
  rig.RunParallelBatch();
  // Three 20 ms tasks serialised on one CPU while three CPUs idled: tens of
  // milliseconds of violation.
  EXPECT_GT(rig.tracker.ViolationTime(rig.engine.Now()), 20 * kMillisecond);
  EXPECT_GE(rig.tracker.ViolationEpisodes(), 1);
}

TEST(WorkConservationTest, BalancingRestoresConservation) {
  WcRig rig(std::make_unique<PinnedPolicy>(), /*balancing=*/true);
  rig.RunParallelBatch();
  // The balancer pulls queued tasks within a tick; violations are bounded by
  // the balancing interval, not the workload length.
  EXPECT_LT(rig.tracker.ViolationTime(rig.engine.Now()), 10 * kMillisecond);
}

TEST(WorkConservationTest, CfsForkIsConservingHere) {
  WcRig rig(std::make_unique<CfsPolicy>(), /*balancing=*/false);
  rig.RunParallelBatch();
  // CFS forks onto distinct idle CPUs: effectively no violation time.
  EXPECT_LT(rig.tracker.ViolationTime(rig.engine.Now()), kMillisecond);
}

TEST(WorkConservationTest, IdleSystemNeverViolates) {
  WcRig rig(std::make_unique<CfsPolicy>(), true);
  rig.engine.RunUntil(50 * kMillisecond);
  EXPECT_EQ(rig.tracker.ViolationTime(rig.engine.Now()), 0);
  EXPECT_EQ(rig.tracker.ViolationEpisodes(), 0);
}

}  // namespace
}  // namespace nestsim
