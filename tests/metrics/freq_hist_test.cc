#include "src/metrics/freq_hist.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

TEST(FreqBucketsTest, PaperEdgesFor6130) {
  const std::vector<double> edges = FreqBucketEdgesFor(MachineByName("intel-6130-2s"));
  EXPECT_EQ(edges, (std::vector<double>{1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7}));
}

TEST(FreqBucketsTest, PaperEdgesFor5218) {
  const std::vector<double> edges = FreqBucketEdgesFor(MachineByName("intel-5218-2s"));
  EXPECT_EQ(edges, (std::vector<double>{1.0, 1.6, 2.3, 2.8, 3.1, 3.6, 3.9}));
}

TEST(FreqBucketsTest, PaperEdgesForE7) {
  const std::vector<double> edges = FreqBucketEdgesFor(MachineByName("intel-e78870v4-4s"));
  EXPECT_EQ(edges, (std::vector<double>{1.2, 1.7, 2.1, 2.6, 3.0}));
}

TEST(FreqBucketsTest, GenericMachineGetsAscendingEdges) {
  const std::vector<double> edges = FreqBucketEdgesFor(FixedFreqMachine(1, 4, 2, 2.0));
  ASSERT_GE(edges.size(), 2u);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i], edges[i - 1] - 1e-12);
  }
}

TEST(FreqHistogramTest, SharesSumToOne) {
  FreqHistogram h;
  h.edges = {1.0, 2.0, 3.0};
  h.seconds = {1.0, 3.0, 4.0};
  double total = 0;
  for (size_t i = 0; i < h.seconds.size(); ++i) {
    total += h.Share(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(h.TopShare(2), 7.0 / 8.0, 1e-12);
}

TEST(FreqHistogramTest, EmptyHistogramIsSafe) {
  FreqHistogram h;
  h.edges = {1.0};
  h.seconds = {0.0};
  EXPECT_DOUBLE_EQ(h.Share(0), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalSeconds(), 0.0);
}

TEST(FreqResidencyTest, FixedFrequencyLandsInOneBucket) {
  Engine engine;
  HardwareModel hw(&engine, FixedFreqMachine(1, 2, 1, 2.0));
  CfsPolicy cfs;
  PerformanceGovernor governor;
  Kernel kernel(&engine, &hw, &cfs, &governor);
  FreqResidencyTracker tracker(&kernel, {1.0, 2.0, 3.0});
  kernel.AddObserver(&tracker);
  kernel.Start();

  ProgramBuilder b("t");
  b.Compute(10e6);  // 5 ms at 2 GHz
  kernel.SpawnInitial(b.Build(), "t", 0, 0);
  while (kernel.live_tasks() > 0) {
    ASSERT_TRUE(engine.Step());
  }
  FreqHistogram h = tracker.Snapshot(engine.Now());
  EXPECT_NEAR(h.seconds[1], 0.005, 1e-6);  // the (1.0, 2.0] bucket
  EXPECT_NEAR(h.seconds[0], 0.0, 1e-9);
  EXPECT_NEAR(h.seconds[2], 0.0, 1e-9);
}

TEST(FreqResidencyTest, IdleTimeIsNotCounted) {
  Engine engine;
  HardwareModel hw(&engine, FixedFreqMachine(1, 2, 1, 2.0));
  CfsPolicy cfs;
  PerformanceGovernor governor;
  Kernel kernel(&engine, &hw, &cfs, &governor);
  FreqResidencyTracker tracker(&kernel, {1.0, 2.0, 3.0});
  kernel.AddObserver(&tracker);
  kernel.Start();

  ProgramBuilder b("t");
  b.Compute(2e6).Sleep(Milliseconds(10)).Compute(2e6);  // 1 ms + sleep + 1 ms
  kernel.SpawnInitial(b.Build(), "t", 0, 0);
  while (kernel.live_tasks() > 0) {
    ASSERT_TRUE(engine.Step());
  }
  FreqHistogram h = tracker.Snapshot(engine.Now());
  EXPECT_NEAR(h.TotalSeconds(), 0.002, 1e-6);  // only the busy 2 ms
}

TEST(FreqResidencyTest, FormatMentionsEveryBucket) {
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  FreqHistogram h;
  h.edges = FreqBucketEdgesFor(spec);
  h.seconds.assign(h.edges.size(), 1.0);
  const std::string text = h.Format(spec);
  EXPECT_NE(text.find("(3.6, 3.9] GHz"), std::string::npos);
  EXPECT_NE(text.find("(0.0, 1.0] GHz"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
