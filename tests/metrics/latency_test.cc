// LatencyDistribution backs the cluster tail-latency report (p50/p99/p99.9),
// so its quantile arithmetic is pinned exactly: linear interpolation on the
// sorted samples, merge ≡ pooled, and monotonicity in the percentile.

#include "src/metrics/latency.h"

#include <gtest/gtest.h>

#include <vector>

namespace nestsim {
namespace {

TEST(LatencyDistributionTest, EmptyIsAllZeros) {
  LatencyDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.PercentileAt(50), 0.0);
  EXPECT_DOUBLE_EQ(d.PercentileAt(99.9), 0.0);
}

TEST(LatencyDistributionTest, SingleSampleIsEveryPercentile) {
  LatencyDistribution d;
  d.Add(7.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(0), 7.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(50), 7.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(99.9), 7.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(100), 7.5);
  EXPECT_DOUBLE_EQ(d.mean(), 7.5);
  EXPECT_DOUBLE_EQ(d.max(), 7.5);
}

TEST(LatencyDistributionTest, ExactSmallNQuantiles) {
  // Sorted {10,20,30,40}: rank = pct/100 * (n-1), linear interpolation.
  LatencyDistribution d;
  for (double v : {30.0, 10.0, 40.0, 20.0}) {  // insertion order must not matter
    d.Add(v);
  }
  EXPECT_DOUBLE_EQ(d.PercentileAt(0), 10.0);
  EXPECT_DOUBLE_EQ(d.PercentileAt(25), 17.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(50), 25.0);
  EXPECT_DOUBLE_EQ(d.PercentileAt(75), 32.5);
  EXPECT_DOUBLE_EQ(d.PercentileAt(100), 40.0);
  EXPECT_DOUBLE_EQ(d.mean(), 25.0);
  EXPECT_DOUBLE_EQ(d.max(), 40.0);
}

TEST(LatencyDistributionTest, TailPercentilesOnHundredSamples) {
  LatencyDistribution d;
  for (int i = 1; i <= 100; ++i) {
    d.Add(static_cast<double>(i));
  }
  // rank(p99) = 0.99 * 99 = 98.01 → 99 + 0.01 * (100 - 99).
  EXPECT_NEAR(d.PercentileAt(99), 99.01, 1e-9);
  EXPECT_NEAR(d.PercentileAt(99.9), 99.901, 1e-9);
  EXPECT_DOUBLE_EQ(d.PercentileAt(50), 50.5);
}

TEST(LatencyDistributionTest, PercentileIsMonotoneInPct) {
  LatencyDistribution d;
  // A lumpy distribution with duplicates and a heavy tail.
  for (double v : {1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 50.0, 400.0}) {
    d.Add(v);
  }
  double prev = d.PercentileAt(0);
  for (double pct = 0.5; pct <= 100.0; pct += 0.5) {
    const double cur = d.PercentileAt(pct);
    EXPECT_GE(cur, prev) << "percentile regressed at pct=" << pct;
    prev = cur;
  }
}

TEST(LatencyDistributionTest, MergeEqualsPooled) {
  LatencyDistribution a, b, pooled;
  const std::vector<double> xs = {5.0, 1.0, 9.0, 2.5};
  const std::vector<double> ys = {7.0, 0.5, 3.0, 11.0, 4.0};
  for (double v : xs) {
    a.Add(v);
    pooled.Add(v);
  }
  for (double v : ys) {
    b.Add(v);
    pooled.Add(v);
  }
  a.Merge(b);
  ASSERT_EQ(a.count(), pooled.count());
  for (double pct : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(a.PercentileAt(pct), pooled.PercentileAt(pct)) << "pct=" << pct;
  }
  EXPECT_DOUBLE_EQ(a.mean(), pooled.mean());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(LatencyDistributionTest, MergeFromEmptyAndIntoEmpty) {
  LatencyDistribution empty, d;
  d.Add(3.0);
  d.Merge(empty);  // no-op
  EXPECT_EQ(d.count(), 1u);
  empty.Merge(d);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.PercentileAt(50), 3.0);
}

}  // namespace
}  // namespace nestsim
