#include "src/metrics/export.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace nestsim {
namespace {

ExperimentResult FakeResult() {
  ExperimentResult r;
  r.makespan = SecondsF(1.5);
  r.energy_joules = 42.0;
  r.underload_per_s = 3.25;
  r.cpus_used = {0, 1, 2};
  r.context_switches = 100;
  r.migrations = 7;
  r.tasks_created = 11;
  return r;
}

TEST(ExportTest, ResultsCsvHasHeaderAndRows) {
  const std::string csv = ResultsToCsv({{"llvm_ninja", "Nest sched", FakeResult()}});
  EXPECT_NE(csv.find("workload,variant,seconds"), std::string::npos);
  EXPECT_NE(csv.find("llvm_ninja,Nest sched,1.500000,42.000,3.250,3,100,7,11"),
            std::string::npos);
}

TEST(ExportTest, CsvQuotesSpecialFields) {
  const std::string csv = ResultsToCsv({{"a,b", "say \"hi\"", FakeResult()}});
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ExportTest, TraceCsv) {
  ExecSegment seg;
  seg.start = Milliseconds(1);
  seg.end = Milliseconds(2);
  seg.cpu = 5;
  seg.tid = 9;
  seg.freq_ghz = 3.5;
  const std::string csv = TraceToCsv({seg});
  EXPECT_NE(csv.find("start_s,end_s,cpu,tid,freq_ghz"), std::string::npos);
  EXPECT_NE(csv.find("0.001000000,0.002000000,5,9,3.500"), std::string::npos);
}

TEST(ExportTest, FreqHistCsvSharesSum) {
  FreqHistogram h;
  h.edges = {1.0, 2.0};
  h.seconds = {1.0, 3.0};
  const std::string csv = FreqHistToCsv(h);
  EXPECT_NE(csv.find("0.00,1.00,1.000000,0.250000"), std::string::npos);
  EXPECT_NE(csv.find("1.00,2.00,3.000000,0.750000"), std::string::npos);
}

TEST(ExportTest, UnderloadSeriesCsv) {
  const std::string csv = UnderloadSeriesToCsv({{0.004, 2.0}, {0.008, 0.0}});
  EXPECT_NE(csv.find("t_s,underload"), std::string::npos);
  EXPECT_NE(csv.find("0.004000,2.0"), std::string::npos);
}

TEST(ExportTest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/nestsim_export_test.csv";
  ASSERT_TRUE(WriteFile(path, "hello,world\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "hello,world\n");
}

TEST(ExportTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir-zzz/file.csv", "x"));
}

}  // namespace
}  // namespace nestsim
