#include "src/metrics/trace.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

struct TraceRig {
  explicit TraceRig(size_t max_segments = 2'000'000)
      : hw(&engine, FixedFreqMachine(1, 4, 1, 1.0)),
        kernel(&engine, &hw, &cfs, &governor),
        recorder(&kernel, max_segments) {
    kernel.AddObserver(&recorder);
    kernel.Start();
  }

  void Run() {
    while (kernel.live_tasks() > 0) {
      ASSERT_TRUE(engine.Step());
    }
  }

  Engine engine;
  HardwareModel hw;
  CfsPolicy cfs;
  PerformanceGovernor governor;
  Kernel kernel;
  TraceRecorder recorder;
};

TEST(TraceTest, RecordsOneSegmentPerStint) {
  TraceRig rig;
  ProgramBuilder b("t");
  b.Compute(2e6).Sleep(Milliseconds(1)).Compute(3e6);
  Task* t = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.Run();
  const auto segments = rig.recorder.Finish(rig.engine.Now());
  // Two compute stints (segments may be split by speed changes; at fixed
  // frequency they are not).
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].tid, t->tid);
  EXPECT_EQ(segments[0].end - segments[0].start, 2 * kMillisecond);
  EXPECT_EQ(segments[1].end - segments[1].start, 3 * kMillisecond);
  EXPECT_DOUBLE_EQ(segments[0].freq_ghz, 1.0);
}

TEST(TraceTest, SegmentsSortedByStart) {
  TraceRig rig;
  for (int i = 0; i < 4; ++i) {
    ProgramBuilder b("t");
    b.Compute(1e6).Sleep(Milliseconds(1)).Compute(1e6);
    rig.kernel.SpawnInitial(b.Build(), "t" + std::to_string(i), 0, i);
  }
  rig.Run();
  const auto segments = rig.recorder.Finish(rig.engine.Now());
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GE(segments[i].start, segments[i - 1].start);
  }
}

TEST(TraceTest, RespectsSegmentCap) {
  TraceRig rig(/*max_segments=*/3);
  for (int i = 0; i < 4; ++i) {
    ProgramBuilder b("t");
    b.Compute(1e6).Sleep(Milliseconds(1)).Compute(1e6);
    rig.kernel.SpawnInitial(b.Build(), "t" + std::to_string(i), 0, i);
  }
  rig.Run();
  // Eight stints happened; only the first three fit under the cap.
  const auto segments = rig.recorder.Finish(rig.engine.Now());
  EXPECT_EQ(segments.size(), 3u);
}

TEST(TraceTest, FinishClosesOpenSegmentMidRun) {
  TraceRig rig;
  ProgramBuilder b("t");
  b.Compute(5e6);  // 5 ms at the fixed 1 GHz
  Task* t = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  while (rig.kernel.live_tasks() > 0 && rig.engine.Now() < 2 * kMillisecond) {
    ASSERT_TRUE(rig.engine.Step());
  }
  ASSERT_GT(rig.kernel.live_tasks(), 0);  // still mid-compute
  const SimTime now = rig.engine.Now();
  const auto segments = rig.recorder.Finish(now);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].tid, t->tid);
  EXPECT_EQ(segments[0].end, now);
  EXPECT_GT(segments[0].end, segments[0].start);
}

TEST(TraceTest, SummarizeReportsBusyShare) {
  TraceRig rig;
  ProgramBuilder b("t");
  b.Compute(5e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 2);
  rig.Run();
  const auto segments = rig.recorder.Finish(rig.engine.Now());
  const std::string summary = TraceRecorder::Summarize(segments, 0, 10 * kMillisecond);
  EXPECT_NE(summary.find("core   2"), std::string::npos);
  EXPECT_NE(summary.find("50.0%"), std::string::npos);  // 5 ms of a 10 ms window
}

TEST(TraceTest, SummarizeClipsToWindow) {
  TraceRig rig;
  ProgramBuilder b("t");
  b.Compute(8e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.Run();
  const auto segments = rig.recorder.Finish(rig.engine.Now());
  const std::string summary = TraceRecorder::Summarize(segments, 0, 4 * kMillisecond);
  // Clipped to the 4 ms window, the core is 100% busy.
  EXPECT_NE(summary.find("100.0%"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
