// The pre-optimisation event queue, kept verbatim as a differential-test
// oracle. src/sim/event_queue.h replaced this binary-heap-over-
// std::priority_queue implementation with a 4-ary heap and slot+generation
// handles; the randomized tests in tests/sim/event_queue_test.cc drive both
// with the same operation sequence and require identical (time, FIFO) firing
// order. Do not "fix" or optimise this copy — its value is being the old
// semantics.

#ifndef NESTSIM_TESTS_TESTING_REFERENCE_EVENT_QUEUE_H_
#define NESTSIM_TESTS_TESTING_REFERENCE_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace nestsim::testing {

// Ids count up from 1, exactly like the original EventId issue order.
class ReferenceEventQueue {
 public:
  using Id = uint64_t;

  Id Push(SimTime t, std::function<void()> fn) {
    const Id id = next_id_++;
    heap_.push(Entry{t, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  bool Cancel(Id id) { return pending_.erase(id) != 0; }

  bool Empty() const { return pending_.empty(); }
  size_t Size() const { return pending_.size(); }

  SimTime NextTime() {
    SkipCancelled();
    assert(!heap_.empty());
    return heap_.top().time;
  }

  struct Fired {
    SimTime time;
    Id id;
    std::function<void()> fn;
  };

  Fired Pop() {
    SkipCancelled();
    assert(!heap_.empty());
    Entry& top = const_cast<Entry&>(heap_.top());
    Fired fired{top.time, top.id, std::move(top.fn)};
    pending_.erase(fired.id);
    heap_.pop();
    return fired;
  }

  void Clear() {
    while (!heap_.empty()) {
      heap_.pop();
    }
    pending_.clear();
  }

 private:
  struct Entry {
    SimTime time;
    Id id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  void SkipCancelled() {
    while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<Id> pending_;
  Id next_id_ = 1;
};

}  // namespace nestsim::testing

#endif  // NESTSIM_TESTS_TESTING_REFERENCE_EVENT_QUEUE_H_
