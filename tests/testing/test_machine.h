// Test helpers: deterministic machines with pinned frequencies, so execution
// times are exactly work / frequency and assertions can be exact.

#ifndef NESTSIM_TESTS_TESTING_TEST_MACHINE_H_
#define NESTSIM_TESTS_TESTING_TEST_MACHINE_H_

#include "src/hw/machine_spec.h"

namespace nestsim {

// A machine whose cores always run at exactly `ghz`: min == nominal == every
// turbo ladder entry, no ramping dynamics can move the frequency.
inline MachineSpec FixedFreqMachine(int sockets = 2, int phys_per_socket = 4,
                                    int threads_per_core = 2, double ghz = 1.0) {
  MachineSpec m;
  m.name = "test-fixed";
  m.cpu_model = "Test CPU";
  m.microarch = "Test";
  m.num_sockets = sockets;
  m.physical_cores_per_socket = phys_per_socket;
  m.threads_per_core = threads_per_core;
  m.min_freq_ghz = ghz;
  m.nominal_freq_ghz = ghz;
  m.turbo = TurboLadder(std::vector<double>(static_cast<size_t>(phys_per_socket), ghz));
  m.ramp_up_ghz_per_ms = 1000.0;
  m.ramp_down_ghz_per_ms = 1000.0;
  m.idle_drift_ghz_per_ms = 1000.0;
  m.busy_downshift_ghz_per_ms = 1000.0;
  m.smt_throughput = 1.0;  // SMT sharing off unless a test overrides it
  return m;
}

}  // namespace nestsim

#endif  // NESTSIM_TESTS_TESTING_TEST_MACHINE_H_
