// Reproduces the ablation studies of §5.2 ("Impact of Nest features",
// configure) and §5.3 (DaCapo): remove each Nest feature and scale each
// Table 1 parameter by 0.5x / 2x / 10x, reporting the change vs default Nest.
//
// Paper findings to check: the reserve nest matters for configure (~5%
// on the Speed Shift machines, up to 16% on the E7); spinning matters most
// for the DaCapo apps (10-26%); compaction removal lets h2/graphchi spread
// (~5%); most parameter scalings are neutral, long spins (10x) hurt.

#include <functional>

#include "bench/bench_util.h"
#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"

using namespace nestsim;

namespace {

struct AblationVariant {
  std::string label;
  std::function<void(NestParams&)> mutate;
};

// Decision counters summed over a variant's repetitions; the per-variant
// "why" behind the makespan deltas (e.g. "no reserve" shows as nest misses,
// "no spin" as zero spin conversions).
SchedCounters SumCounters(const RepeatedResult& rr) {
  SchedCounters sum;
  for (const ExperimentResult& r : rr.runs) {
    sum.Add(r.counters);
  }
  return sum;
}

std::vector<AblationVariant> Variants() {
  std::vector<AblationVariant> v;
  v.push_back({"default", [](NestParams&) {}});
  v.push_back({"no reserve", [](NestParams& p) { p.enable_reserve = false; }});
  v.push_back({"no compaction", [](NestParams& p) { p.enable_compaction = false; }});
  v.push_back({"no spin", [](NestParams& p) { p.enable_spin = false; }});
  v.push_back({"no attach", [](NestParams& p) { p.enable_attach = false; }});
  v.push_back({"no impatience", [](NestParams& p) { p.enable_impatience = false; }});
  v.push_back({"no wake WC", [](NestParams& p) { p.enable_wake_work_conservation = false; }});
  v.push_back({"no reservation", [](NestParams& p) { p.enable_placement_reservation = false; }});
  v.push_back({"P_remove x0.5", [](NestParams& p) { p.p_remove_ticks = 1; }});
  v.push_back({"P_remove x2", [](NestParams& p) { p.p_remove_ticks = 4; }});
  v.push_back({"P_remove x10", [](NestParams& p) { p.p_remove_ticks = 20; }});
  v.push_back({"R_max x0.5", [](NestParams& p) { p.r_max = 2; }});
  v.push_back({"R_max x2", [](NestParams& p) { p.r_max = 10; }});
  v.push_back({"R_max x10", [](NestParams& p) { p.r_max = 50; }});
  v.push_back({"R_impat x0.5", [](NestParams& p) { p.r_impatient = 1; }});
  v.push_back({"R_impat x2", [](NestParams& p) { p.r_impatient = 4; }});
  v.push_back({"R_impat x10", [](NestParams& p) { p.r_impatient = 20; }});
  v.push_back({"S_max x0.5", [](NestParams& p) { p.s_max_ticks = 1; }});
  v.push_back({"S_max x2", [](NestParams& p) { p.s_max_ticks = 4; }});
  v.push_back({"S_max x10", [](NestParams& p) { p.s_max_ticks = 20; }});
  return v;
}

void RunStudy(const std::string& machine, const Workload& workload) {
  const int reps = BenchRepetitions();
  std::printf("\n[%s on %s]\n", workload.name().c_str(), machine.c_str());
  ExperimentConfig config;
  config.machine = machine;
  config.scheduler = SchedulerKind::kNest;
  config.governor = "schedutil";
  const RepeatedResult base = RunRepeated(config, workload, reps);
  std::printf("  %-16s %8.3fs (baseline Nest-schedutil, Table 1 parameters)\n", "default",
              base.mean_seconds);
  std::printf("  %-16s %8s  [%s]\n", "", "", NestSummary(SumCounters(base)).c_str());
  for (const AblationVariant& variant : Variants()) {
    if (variant.label == "default") {
      continue;
    }
    ExperimentConfig c = config;
    variant.mutate(c.nest);
    const RepeatedResult rr = RunRepeated(c, workload, reps);
    std::printf("  %-16s %8.3fs  change vs default: %s\n", variant.label.c_str(),
                rr.mean_seconds,
                FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
    std::printf("  %-16s %8s  [%s]\n", "", "", NestSummary(SumCounters(rr)).c_str());
  }
}

}  // namespace

int main() {
  PrintHeader("Ablation study (paper §5.2 and §5.3, Table 1 parameters)",
              "Each Nest feature removed / parameter scaled; positive change "
              "means the variant is faster than default Nest.");
  std::printf("\nTable 1 defaults: P_remove=2 ticks, R_max=5, R_impatient=2, S_max=2 ticks\n");

  RunStudy("intel-5218-2s", ConfigureWorkload("llvm_ninja"));
  RunStudy("intel-5218-2s", ConfigureWorkload("mplayer"));
  RunStudy("intel-e78870v4-4s", ConfigureWorkload("llvm_ninja"));
  RunStudy("intel-5218-2s", DacapoWorkload("h2"));
  RunStudy("intel-6130-4s", DacapoWorkload("graphchi-eval"));
  RunStudy("intel-6130-4s", DacapoWorkload("tradebeans"));
  return 0;
}
