#include "bench/bench_util.h"

#include "src/campaign/campaign.h"

namespace nestsim {

int BenchRepetitions(int fallback) { return RepetitionsFromEnv(fallback); }

}  // namespace nestsim
