#include "bench/bench_util.h"

#include <cstdlib>

namespace nestsim {

int BenchRepetitions() {
  const char* env = std::getenv("NESTSIM_REPS");
  if (env != nullptr) {
    const int reps = std::atoi(env);
    if (reps > 0) {
      return reps;
    }
  }
  return 2;
}

}  // namespace nestsim
