// Reproduces Figure 2: core-frequency trace of LLVM configuration (ninja
// build) with CFS-schedutil vs Nest-schedutil on the 2-socket Intel 5218.
//
// The paper's claim: CFS disperses the mostly-serial probe tasks across ~8
// cores that hover in the lower turbo range; Nest keeps them on ~2 cores at
// the highest frequencies.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

namespace {

void RunCase(const char* label, SchedulerKind scheduler) {
  ExperimentConfig config;
  config.machine = "intel-5218-2s";
  config.scheduler = scheduler;
  config.governor = "schedutil";
  config.record_trace = true;
  config.seed = 7;
  config.trace_label = std::string("fig2-llvm-") + (scheduler == SchedulerKind::kCfs ? "cfs" : "nest");

  ConfigureWorkload workload("llvm_ninja");
  const ExperimentResult r = RunExperiment(config, workload);
  const MachineSpec& spec = MachineByName(config.machine);

  std::printf("\n(%s) makespan %.3fs, %zu cores ever used\n", label, r.seconds(),
              r.cpus_used.size());
  std::printf("frequency residency while executing tasks:\n%s", r.freq_hist.Format(spec).c_str());
  std::printf("first 300 ms, per-core activity:\n%s",
              TraceRecorder::Summarize(r.trace, 0, 300 * kMillisecond).c_str());
  if (!r.trace_file.empty()) {
    std::printf("perfetto trace: %s\n", r.trace_file.c_str());
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 2: LLVM-configure frequency trace (Intel 5218, schedutil)",
              "CFS spreads probes over many mid-frequency cores; Nest keeps them "
              "on a couple of cores at the top turbo frequencies.");
  RunCase("CFS-schedutil", SchedulerKind::kCfs);
  RunCase("Nest-schedutil", SchedulerKind::kNest);
  return 0;
}
