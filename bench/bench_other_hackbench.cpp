// Reproduces §5.6's hackbench and schbench observations.
//
// hackbench is dominated by scheduling itself; the paper reports a large
// *slowdown* with Nest (its heavier core selection and concentration hurt
// when everything is wakeups). schbench's 99th-percentile tail latency shows
// no clear winner.

#include "bench/bench_util.h"
#include "src/workloads/micro.h"

using namespace nestsim;

int main() {
  PrintHeader("§5.6: hackbench and schbench",
              "hackbench: completion time (lower is better; the paper reports a "
              "large Nest slowdown). schbench: p99 wakeup latency.");

  const std::string machine = "intel-5218-2s";

  {
    HackbenchSpec spec;
    HackbenchWorkload workload(spec);
    std::printf("\nhackbench -g %d (fan %d, loops %d) on %s\n", spec.groups, spec.fan, spec.loops,
                machine.c_str());
    for (SchedulerKind scheduler : {SchedulerKind::kCfs, SchedulerKind::kNest}) {
      ExperimentConfig config;
      config.machine = machine;
      config.scheduler = scheduler;
      config.governor = "schedutil";
      config.seed = 3;
      const ExperimentResult r = RunExperiment(config, workload);
      std::printf("  %-5s %8.3fs   ctx switches %llu  migrations %llu\n",
                  SchedulerKindName(scheduler), r.seconds(),
                  static_cast<unsigned long long>(r.context_switches),
                  static_cast<unsigned long long>(r.migrations));
    }
  }

  {
    std::printf("\nschbench (p99 wakeup latency, us) on %s\n", machine.c_str());
    std::printf("  %-22s %10s %10s\n", "messageXworkers", "CFS", "Nest");
    for (const auto& [mt, wt] : std::vector<std::pair<int, int>>{{2, 8}, {4, 8}, {4, 16}, {8, 16}}) {
      SchbenchSpec spec;
      spec.message_threads = mt;
      spec.workers_per_thread = wt;
      SchbenchWorkload workload(spec);
      std::printf("  %2dx%-19d", mt, wt);
      for (SchedulerKind scheduler : {SchedulerKind::kCfs, SchedulerKind::kNest}) {
        ExperimentConfig config;
        config.machine = machine;
        config.scheduler = scheduler;
        config.governor = "schedutil";
        config.record_latency = true;
        config.seed = 3;
        const ExperimentResult r = RunExperiment(config, workload);
        std::printf(" %10.1f", r.p99_wakeup_latency_us);
      }
      std::printf("\n");
    }
  }
  return 0;
}
