// Reproduces §5.6 "Multiple concurrent applications": zstd compression and
// libgav1 running in parallel. The paper reports that both applications still
// improve under Nest in the co-run, and some even improve relative to their
// single-application Nest runs.

#include "bench/bench_util.h"
#include "src/workloads/multi.h"
#include "src/workloads/phoronix.h"

using namespace nestsim;

namespace {

double SoloSeconds(const std::string& machine, SchedulerKind sched, const std::string& test) {
  ExperimentConfig config;
  config.machine = machine;
  config.scheduler = sched;
  config.governor = "schedutil";
  config.seed = 9;
  PhoronixWorkload workload(test);
  return RunExperiment(config, workload).seconds();
}

void CoRun(const std::string& machine, const std::string& a, const std::string& b) {
  std::printf("\nco-run: %s + %s on %s\n", a.c_str(), b.c_str(), machine.c_str());
  const double solo_a_cfs = SoloSeconds(machine, SchedulerKind::kCfs, a);
  const double solo_b_cfs = SoloSeconds(machine, SchedulerKind::kCfs, b);
  const double solo_a_nest = SoloSeconds(machine, SchedulerKind::kNest, a);
  const double solo_b_nest = SoloSeconds(machine, SchedulerKind::kNest, b);

  std::map<SchedulerKind, std::pair<double, double>> co;
  for (SchedulerKind sched : {SchedulerKind::kCfs, SchedulerKind::kNest}) {
    MultiAppWorkload multi;
    multi.Add(std::make_unique<PhoronixWorkload>(a));
    multi.Add(std::make_unique<PhoronixWorkload>(b));
    ExperimentConfig config;
    config.machine = machine;
    config.scheduler = sched;
    config.governor = "schedutil";
    config.seed = 9;
    const ExperimentResult r = RunExperiment(config, multi);
    co[sched] = {ToSeconds(r.tag_makespan.at(0)), ToSeconds(r.tag_makespan.at(1))};
  }

  std::printf("  %-22s solo-CFS  solo-Nest  corun-CFS corun-Nest  Nest-vs-CFS(corun)\n", "app");
  std::printf("  %-22s %8.3f %9.3f %10.3f %10.3f   %s\n", a.c_str(), solo_a_cfs, solo_a_nest,
              co[SchedulerKind::kCfs].first, co[SchedulerKind::kNest].first,
              FormatSpeedup(SpeedupPercent(co[SchedulerKind::kCfs].first,
                                           co[SchedulerKind::kNest].first))
                  .c_str());
  std::printf("  %-22s %8.3f %9.3f %10.3f %10.3f   %s\n", b.c_str(), solo_b_cfs, solo_b_nest,
              co[SchedulerKind::kCfs].second, co[SchedulerKind::kNest].second,
              FormatSpeedup(SpeedupPercent(co[SchedulerKind::kCfs].second,
                                           co[SchedulerKind::kNest].second))
                  .c_str());
}

}  // namespace

int main() {
  PrintHeader("§5.6: Multiple concurrent applications",
              "Per-application completion times when two benchmarks share the "
              "machine, vs their single-application runs.");
  CoRun("intel-5218-2s", "zstd compression 7", "libgav1 4");
  CoRun("intel-5218-2s", "zstd compression 10", "libgav1 4");
  CoRun("intel-6130-2s", "zstd compression 7", "zstd compression 10");
  return 0;
}
