// Reproduces Figure 6: frequency distributions during the configure
// workloads, per machine and scheduler/governor combination. One run per
// cell, as for the paper's frequency traces.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 6: Configure frequency distributions",
              "Share of task-execution time per frequency bucket. 'top2' is the "
              "share in the two highest-frequency buckets — Nest should "
              "dominate there.");
  const auto variants = StandardVariants();
  for (const std::string& machine : PaperMachineNames()) {
    const MachineSpec& spec = MachineByName(machine);
    PrintMachineBanner(spec);
    for (const std::string& package : ConfigureWorkload::PackageNames()) {
      std::printf("%s:\n", package.c_str());
      for (const Variant& variant : variants) {
        ExperimentConfig config = ConfigFor(machine, variant);
        config.seed = 11;
        ConfigureWorkload workload(package);
        const ExperimentResult r = RunExperiment(config, workload);
        std::printf("  %-11s top2 %5.1f%% |", variant.label.c_str(),
                    100.0 * r.freq_hist.TopShare(2));
        for (size_t b = 0; b < r.freq_hist.seconds.size(); ++b) {
          std::printf(" %5.1f", 100.0 * r.freq_hist.Share(b));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
