// Reproduces §5.6 "Server tests" (2-socket Intel 6130): web servers,
// key-value stores, and databases under synthetic client load.
//
// Paper shape: Nest loses on apache-siege as the number of concurrent
// requests grows (concurrency overwhelms the nest); nginx/node/php are
// neutral; leveldb gains ~25% and redis ~7% (few warm threads); rocksdb's
// random-read loses ~5%.

#include "bench/bench_util.h"
#include "src/metrics/export.h"
#include "src/workloads/server.h"

using namespace nestsim;

int main() {
  PrintHeader("§5.6: Server tests (2-socket Intel 6130)",
              "Completion time of a fixed request volume, speedup vs "
              "CFS-schedutil. p99 is the baseline's wakeup tail latency.");
  const int reps = BenchRepetitions();
  const std::string machine = "intel-6130-2s";

  std::printf("%-18s %16s %10s %10s %8s\n", "test", "CFS sched (s)", "Nest sched", "Nest perf",
              "p99(us)");
  std::vector<ResultRow> rows;
  for (const std::string& test : ServerWorkload::TestNames()) {
    ServerWorkload workload(test);
    ExperimentConfig base = ConfigFor(machine, {"CFS sched", SchedulerKind::kCfs, "schedutil"});
    base.record_latency = true;
    const RepeatedResult base_rr = RunRepeated(base, workload, reps);
    std::printf("%-18s %9.3fs %4.1f%%", test.c_str(), base_rr.mean_seconds, base_rr.stddev_pct());
    rows.push_back({test, "CFS sched", base_rr.runs.front()});
    for (const Variant& variant :
         {Variant{"Nest sched", SchedulerKind::kNest, "schedutil"},
          Variant{"Nest perf", SchedulerKind::kNest, "performance"}}) {
      const RepeatedResult rr = RunRepeated(ConfigFor(machine, variant), workload, reps);
      std::printf(" %10s",
                  FormatSpeedup(SpeedupPercent(base_rr.mean_seconds, rr.mean_seconds)).c_str());
      rows.push_back({test, variant.label, rr.runs.front()});
    }
    std::printf(" %8.1f\n", base_rr.runs.front().p99_wakeup_latency_us);
  }

  // Machine-readable copy of the table next to the binary output.
  if (WriteFile("server_results.csv", ResultsToCsv(rows))) {
    std::printf("\n(raw rows written to server_results.csv)\n");
  }
  return 0;
}
