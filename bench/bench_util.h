// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints a header naming the paper artefact it
// regenerates, then rows in the paper's layout: the baseline is always
// CFS-schedutil and speedups are relative to it (positive = better), with a
// ±5% "noise" band as in the paper's plots.

#ifndef NESTSIM_BENCH_BENCH_UTIL_H_
#define NESTSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/campaign/grid.h"
#include "src/core/experiment.h"
#include "src/metrics/stats.h"
#include "src/scenario/report.h"

namespace nestsim {

// `Variant` (a scheduler/governor column) lives in src/campaign/grid.h; the
// grid benches run their machine × workload × variant grids through the
// campaign worker pool (NESTSIM_JOBS workers, NESTSIM_JSONL result sink).

// The paper's standard comparison set (Figure 5 adds Smove).
inline std::vector<Variant> StandardVariants(bool include_smove = false) {
  std::vector<Variant> variants = {
      {"CFS sched", SchedulerKind::kCfs, "schedutil"},
      {"CFS perf", SchedulerKind::kCfs, "performance"},
      {"Nest sched", SchedulerKind::kNest, "schedutil"},
      {"Nest perf", SchedulerKind::kNest, "performance"},
  };
  if (include_smove) {
    variants.push_back({"Smove sched", SchedulerKind::kSmove, "schedutil"});
  }
  return variants;
}

inline ExperimentConfig ConfigFor(const std::string& machine, const Variant& variant) {
  ExperimentConfig config;
  config.machine = machine;
  config.scheduler = variant.scheduler;
  config.governor = variant.governor;
  return config;
}

// How many seeded repetitions benches run. The paper uses 10 (30 for power);
// 2 keeps the full suite fast while still exposing run-to-run variance.
// NESTSIM_REPS overrides the fallback uniformly across every bench (via
// RepetitionsFromEnv in src/campaign/); benches whose paper artefact is
// defined over a single run (Fig. 4, Table 4) pass fallback = 1.
int BenchRepetitions(int fallback = 2);

// The pretty-printers (PrintHeader, PrintMachineBanner, FormatSpeedup) moved
// to src/scenario/report.h so the scenario runner prints byte-identical
// tables; they keep their old names in the nestsim namespace.

}  // namespace nestsim

#endif  // NESTSIM_BENCH_BENCH_UTIL_H_
