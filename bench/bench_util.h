// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints a header naming the paper artefact it
// regenerates, then rows in the paper's layout: the baseline is always
// CFS-schedutil and speedups are relative to it (positive = better), with a
// ±5% "noise" band as in the paper's plots.

#ifndef NESTSIM_BENCH_BENCH_UTIL_H_
#define NESTSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/campaign/grid.h"
#include "src/core/experiment.h"
#include "src/metrics/stats.h"

namespace nestsim {

// `Variant` (a scheduler/governor column) lives in src/campaign/grid.h; the
// grid benches run their machine × workload × variant grids through the
// campaign worker pool (NESTSIM_JOBS workers, NESTSIM_JSONL result sink).

// The paper's standard comparison set (Figure 5 adds Smove).
inline std::vector<Variant> StandardVariants(bool include_smove = false) {
  std::vector<Variant> variants = {
      {"CFS sched", SchedulerKind::kCfs, "schedutil"},
      {"CFS perf", SchedulerKind::kCfs, "performance"},
      {"Nest sched", SchedulerKind::kNest, "schedutil"},
      {"Nest perf", SchedulerKind::kNest, "performance"},
  };
  if (include_smove) {
    variants.push_back({"Smove sched", SchedulerKind::kSmove, "schedutil"});
  }
  return variants;
}

inline ExperimentConfig ConfigFor(const std::string& machine, const Variant& variant) {
  ExperimentConfig config;
  config.machine = machine;
  config.scheduler = variant.scheduler;
  config.governor = variant.governor;
  return config;
}

// How many seeded repetitions benches run. The paper uses 10 (30 for power);
// 3 keeps the full suite fast while still exposing run-to-run variance. Can
// be raised via the NESTSIM_REPS environment variable.
int BenchRepetitions();

// Pretty-printers ------------------------------------------------------------

inline void PrintHeader(const std::string& what, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", what.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintMachineBanner(const MachineSpec& spec) {
  std::printf("\n--- %s (%s, %dx%dx%d) ---\n", spec.name.c_str(), spec.cpu_model.c_str(),
              spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
}

// "+12.3%" with a marker when outside the paper's ±5% noise band.
inline std::string FormatSpeedup(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+6.1f%%%s", pct, pct > 5.0 ? " *" : (pct < -5.0 ? " !" : "  "));
  return buf;
}

}  // namespace nestsim

#endif  // NESTSIM_BENCH_BENCH_UTIL_H_
