// Micro-benchmarks of the scheduler hot paths (google-benchmark).
//
// Not a paper figure: §5.6 attributes the hackbench slowdown to Nest's extra
// core-selection code; these micro-benchmarks quantify the per-operation
// costs of CFS vs Nest selection and the simulator's own primitives.

#include <benchmark/benchmark.h>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "src/nest/nest_policy.h"
#include "src/sim/event_queue.h"

using namespace nestsim;

namespace {

struct Fixture {
  Engine engine;
  HardwareModel hw;
  SchedutilGovernor governor;
  Kernel kernel;
  Task task;

  explicit Fixture(SchedulerPolicy* policy, const char* machine = "intel-5218-2s")
      : hw(&engine, MachineByName(machine)), kernel(&engine, &hw, policy, &governor) {
    kernel.Start();
    task.tid = 1;
    task.prev_cpu = 3;
  }
};

void BM_CfsSelectWake(benchmark::State& state) {
  CfsPolicy cfs;
  Fixture fx(&cfs);
  WakeContext ctx;
  ctx.waker_cpu = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfs.SelectCpuWake(fx.task, ctx));
  }
}
BENCHMARK(BM_CfsSelectWake);

void BM_CfsSelectFork(benchmark::State& state) {
  CfsPolicy cfs;
  Fixture fx(&cfs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfs.SelectCpuFork(fx.task, 3));
  }
}
BENCHMARK(BM_CfsSelectFork);

void BM_NestSelectWake(benchmark::State& state) {
  NestPolicy nest;
  Fixture fx(&nest);
  WakeContext ctx;
  ctx.waker_cpu = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nest.SelectCpuWake(fx.task, ctx));
    fx.task.impatience = 0;
  }
}
BENCHMARK(BM_NestSelectWake);

void BM_NestSelectFork(benchmark::State& state) {
  NestPolicy nest;
  Fixture fx(&nest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nest.SelectCpuFork(fx.task, 3));
  }
}
BENCHMARK(BM_NestSelectFork);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue queue;
  for (auto _ : state) {
    queue.Push(1, [] {});
    benchmark::DoNotOptimize(queue.Pop());
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_HardwareFreqUpdate(benchmark::State& state) {
  Engine engine;
  HardwareModel hw(&engine, MachineByName("intel-e78870v4-4s"));
  hw.Start();
  hw.SetThreadBusy(0, true);
  for (auto _ : state) {
    hw.KickCpu(0);
    benchmark::DoNotOptimize(hw.FreqGhz(0));
  }
}
BENCHMARK(BM_HardwareFreqUpdate);

}  // namespace

BENCHMARK_MAIN();
