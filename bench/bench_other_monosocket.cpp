// Reproduces §5.6 "Mono-socket machines": configure, DaCapo, and NAS subsets
// on the single-socket Intel Xeon 5220 and AMD Ryzen 5 PRO 4650G models.
//
// Paper shape: configure speedups persist (AMD especially: 20-80% with
// Nest-schedutil and more with Nest-performance); DaCapo gains shrink (no
// cross-socket dispersal left to fix); NAS is identical to CFS.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"
#include "src/workloads/nas.h"

using namespace nestsim;

namespace {

void Row(const std::string& machine, const Workload& workload) {
  const int reps = BenchRepetitions();
  const auto variants = StandardVariants();
  const RepeatedResult base = RunRepeated(ConfigFor(machine, variants[0]), workload, reps);
  std::printf("  %-22s %9.3fs", workload.name().c_str(), base.mean_seconds);
  for (size_t v = 1; v < variants.size(); ++v) {
    const RepeatedResult rr = RunRepeated(ConfigFor(machine, variants[v]), workload, reps);
    std::printf(" %10s", FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("§5.6: Mono-socket machines",
              "Speedups vs CFS-schedutil on single-socket models.");
  for (const std::string& machine : {std::string("intel-5220-1s"), std::string("amd-4650g-1s")}) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("  %-22s %10s %10s %10s %10s\n", "workload", "CFS sched", "CFS perf",
                "Nest sched", "Nest perf");
    for (const char* pkg : {"llvm_ninja", "mplayer", "gcc", "erlang"}) {
      Row(machine, ConfigureWorkload(pkg));
    }
    for (const char* app : {"h2", "graphchi-eval", "tradebeans", "fop", "xalan"}) {
      Row(machine, DacapoWorkload(app));
    }
    for (const char* kern : {"bt", "lu", "mg"}) {
      Row(machine, NasWorkload(kern));
    }
  }
  return 0;
}
