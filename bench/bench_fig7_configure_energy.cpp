// Reproduces Figure 7: CPU energy-consumption reduction vs CFS-schedutil for
// the configure workloads. The paper reports savings of up to ~19% with
// Nest, driven mostly by shorter running time.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 7: Configure CPU energy reduction vs CFS-schedutil",
              "Positive = less energy. Baseline column is CFS-schedutil joules.");
  const int reps = BenchRepetitions();
  const auto variants = StandardVariants();

  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("%-14s %14s %10s %10s %10s\n", "package", "CFS sched (J)", "CFS perf",
                "Nest sched", "Nest perf");
    for (const std::string& package : ConfigureWorkload::PackageNames()) {
      ConfigureWorkload workload(package);
      const RepeatedResult base = RunRepeated(ConfigFor(machine, variants[0]), workload, reps);
      std::printf("%-14s %13.1fJ", package.c_str(), base.mean_energy_j);
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult rr = RunRepeated(ConfigFor(machine, variants[v]), workload, reps);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_energy_j, rr.mean_energy_j)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
