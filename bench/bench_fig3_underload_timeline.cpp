// Reproduces Figure 3: underload timeline for LLVM configuration (ninja) on
// the Intel 5218 with the schedutil governor, CFS vs Nest. One 4 ms interval
// per sample; with Nest the underload should almost disappear.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

namespace {

std::vector<std::pair<double, double>> Series(SchedulerKind scheduler) {
  ExperimentConfig config;
  config.machine = "intel-5218-2s";
  config.scheduler = scheduler;
  config.governor = "schedutil";
  config.record_underload_series = true;
  config.seed = 7;
  ConfigureWorkload workload("llvm_ninja");
  return RunExperiment(config, workload).underload_series;
}

}  // namespace

int main() {
  PrintHeader("Figure 3: Underload timeline, LLVM configure (Intel 5218, schedutil)",
              "Per-4ms-interval underload over the first 300 ms; columns CFS / Nest.");
  const auto cfs = Series(SchedulerKind::kCfs);
  const auto nest = Series(SchedulerKind::kNest);

  std::printf("%10s %6s %6s\n", "t (s)", "CFS", "Nest");
  double cfs_total = 0.0;
  double nest_total = 0.0;
  const size_t n = std::min(cfs.size(), nest.size());
  for (size_t i = 0; i < n; ++i) {
    if (cfs[i].first > 0.3) {
      break;
    }
    std::printf("%10.3f %6.0f %6.0f\n", cfs[i].first, cfs[i].second, nest[i].second);
    cfs_total += cfs[i].second;
    nest_total += nest[i].second;
  }
  std::printf("\ntotal underload in window: CFS %.0f, Nest %.0f\n", cfs_total, nest_total);
  return 0;
}
