// Reproduces Figure 5: configure-workload speedups vs CFS-schedutil, on all
// four machines, for CFS-performance, Nest-schedutil, Nest-performance, and
// Smove-schedutil. The paper's headline: Nest gains 10%+ almost everywhere
// (up to ~37% on the E7-8870 v4), Smove stays under ~5-9%, CFS-performance
// helps little on the Speed Shift machines.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 5: Configure speedups vs CFS-schedutil",
              "Rows: packages. Baseline column shows CFS-schedutil time +- stddev%. "
              "'*' marks speedups above the paper's 5% band, '!' degradations.");
  const int reps = BenchRepetitions();
  const auto variants = StandardVariants(/*include_smove=*/true);

  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("%-14s %16s %10s %10s %10s %10s\n", "package", "CFS sched (s)", "CFS perf",
                "Nest sched", "Nest perf", "Smove sch");
    for (const std::string& package : ConfigureWorkload::PackageNames()) {
      ConfigureWorkload workload(package);
      const RepeatedResult base =
          RunRepeated(ConfigFor(machine, variants[0]), workload, reps);
      std::printf("%-14s %9.2fs %4.1f%%", package.c_str(), base.mean_seconds,
                  base.stddev_pct());
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult rr = RunRepeated(ConfigFor(machine, variants[v]), workload, reps);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
