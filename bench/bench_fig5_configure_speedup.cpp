// Reproduces Figure 5: configure-workload speedups vs CFS-schedutil, on all
// four machines, for CFS-performance, Nest-schedutil, Nest-performance, and
// Smove-schedutil. The paper's headline: Nest gains 10%+ almost everywhere
// (up to ~37% on the E7-8870 v4), Smove stays under ~5-9%, CFS-performance
// helps little on the Speed Shift machines.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 5: Configure speedups vs CFS-schedutil",
              "Rows: packages. Baseline column shows CFS-schedutil time +- stddev%. "
              "'*' marks speedups above the paper's 5% band, '!' degradations.");
  const auto variants = StandardVariants(/*include_smove=*/true);
  GridCampaign grid("fig5_configure_speedup", PaperMachineNames(),
                    ConfigureWorkload::PackageNames(), variants,
                    [](size_t, const std::string& package) {
                      return std::make_shared<ConfigureWorkload>(package);
                    });
  grid.set_repetitions(BenchRepetitions());
  grid.Run();

  for (size_t m = 0; m < grid.machines().size(); ++m) {
    PrintMachineBanner(MachineByName(grid.machines()[m]));
    std::printf("%-14s %16s %10s %10s %10s %10s\n", "package", "CFS sched (s)", "CFS perf",
                "Nest sched", "Nest perf", "Smove sch");
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      const RepeatedResult& base = grid.result(m, r, 0);
      std::printf("%-14s %9.2fs %4.1f%%", grid.rows()[r].c_str(), base.mean_seconds,
                  base.stddev_pct());
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult& rr = grid.result(m, r, v);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
