// Reproduces Figure 5: configure-workload speedups vs CFS-schedutil, on all
// four machines, for CFS-performance, Nest-schedutil, Nest-performance, and
// Smove-schedutil. The paper's headline: Nest gains 10%+ almost everywhere
// (up to ~37% on the E7-8870 v4), Smove stays under ~5-9%, CFS-performance
// helps little on the Speed Shift machines.
//
// The grid, formats, and seeds live in scenarios/fig5.json; this binary is a
// thin wrapper so `bench_fig5_configure_speedup` and
// `nestsim_run scenarios/fig5.json` print byte-identical tables.

#include "src/scenario/runner.h"

int main() { return nestsim::RunScenarioFileMain("fig5.json"); }
