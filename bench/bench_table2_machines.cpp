// Reproduces Table 2: hardware characteristics of the evaluation machines.

#include "bench/bench_util.h"

using namespace nestsim;

int main() {
  PrintHeader("Table 2: Hardware characteristics",
              "Machine models used for every experiment (paper Table 2 + the "
              "mono-socket machines of §5.6).");
  std::printf("%-18s %-26s %-13s %9s %8s %8s %10s %s\n", "name", "CPU", "uarch", "#cores",
              "min", "max", "max turbo", "power management");
  for (const MachineSpec& m : AllMachines()) {
    const char* pm = m.power_management == PowerManagement::kSpeedShift ? "Intel Speed Shift"
                     : m.power_management == PowerManagement::kSpeedStep
                         ? "Enhanced Intel SpeedStep"
                         : "AMD Turbo Core";
    char cores[32];
    std::snprintf(cores, sizeof(cores), "%dx%dx%d=%d", m.num_sockets,
                  m.physical_cores_per_socket, m.threads_per_core,
                  m.num_sockets * m.physical_cores_per_socket * m.threads_per_core);
    std::printf("%-18s %-26s %-13s %9s %5.1fGHz %5.1fGHz %7.1fGHz %s\n", m.name.c_str(),
                m.cpu_model.c_str(), m.microarch.c_str(), cores, m.min_freq_ghz,
                m.nominal_freq_ghz, m.turbo.MaxTurboGhz(), pm);
  }
  return 0;
}
