// Reproduces Figure 11: DaCapo frequency distributions per machine and
// scheduler/governor combination (one run per cell).

#include "bench/bench_util.h"
#include "src/workloads/dacapo.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 11: DaCapo frequency distributions",
              "Share of task-execution time per frequency bucket; 'top2' = two "
              "highest buckets.");
  const auto variants = StandardVariants();
  for (const std::string& machine : PaperMachineNames()) {
    const MachineSpec& spec = MachineByName(machine);
    PrintMachineBanner(spec);
    for (const std::string& app : DacapoWorkload::AppNames()) {
      std::printf("%s:\n", app.c_str());
      for (const Variant& variant : variants) {
        ExperimentConfig config = ConfigFor(machine, variant);
        config.seed = 5;
        DacapoWorkload workload(app);
        const ExperimentResult r = RunExperiment(config, workload);
        std::printf("  %-11s top2 %5.1f%% |", variant.label.c_str(),
                    100.0 * r.freq_hist.TopShare(2));
        for (size_t b = 0; b < r.freq_hist.seconds.size(); ++b) {
          std::printf(" %5.1f", 100.0 * r.freq_hist.Share(b));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
