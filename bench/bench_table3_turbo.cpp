// Reproduces Table 3: available turbo frequencies by active-core count, and
// verifies the live hardware model respects the ladder: with N busy cores on
// a socket, no core exceeds the ladder's cap for N.

#include "bench/bench_util.h"
#include "src/hw/hardware.h"

using namespace nestsim;

namespace {

// Drives the hardware model directly: marks the first `busy` physical cores
// of socket 0 busy, lets frequencies settle, and reports the hottest core.
double SettledFreq(const MachineSpec& spec, int busy) {
  Engine engine;
  HardwareModel hw(&engine, spec);
  hw.Start();
  for (int i = 0; i < busy; ++i) {
    hw.SetThreadBusy(hw.topology().FirstThreadsOnSocket(0)[i], true);
  }
  engine.RunUntil(200 * kMillisecond);
  double hottest = 0.0;
  for (int i = 0; i < busy; ++i) {
    hottest = std::max(hottest, hw.FreqGhz(hw.topology().FirstThreadsOnSocket(0)[i]));
  }
  return hottest;
}

}  // namespace

int main() {
  PrintHeader("Table 3: Available turbo frequencies",
              "Ladder caps by number of active cores on a socket; 'model' is the "
              "settled frequency the DVFS model actually reaches.");
  for (const MachineSpec& m : AllMachines()) {
    PrintMachineBanner(m);
    std::printf("  active cores:");
    const int n = m.physical_cores_per_socket;
    for (int c = 1; c <= n; c = c < 4 ? c + 1 : c + 4) {
      std::printf(" %5d", c);
    }
    std::printf("\n  ladder (GHz):");
    for (int c = 1; c <= n; c = c < 4 ? c + 1 : c + 4) {
      std::printf(" %5.1f", m.turbo.CapGhz(c));
    }
    std::printf("\n  model  (GHz):");
    for (int c = 1; c <= n; c = c < 4 ? c + 1 : c + 4) {
      std::printf(" %5.1f", SettledFreq(m, c));
    }
    std::printf("\n");
  }
  return 0;
}
