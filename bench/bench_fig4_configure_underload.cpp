// Reproduces Figure 4: underload per second for the configure workloads, on
// all four paper machines, with CFS and Nest under both governors. As in the
// paper, underload is based on a single run.

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 4: Configure underload per second",
              "Nest should almost eliminate the underload that CFS accumulates "
              "by choosing long-idle cores. (Absolute scale exceeds the paper's "
              "because the simulated scripts are fork-dense end to end; see "
              "EXPERIMENTS.md.)");
  const auto variants = StandardVariants();
  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("%-14s %12s %12s %12s %12s\n", "package", "CFS sched", "CFS perf", "Nest sched",
                "Nest perf");
    for (const std::string& package : ConfigureWorkload::PackageNames()) {
      ConfigureWorkload workload(package);
      std::printf("%-14s", package.c_str());
      for (const Variant& variant : variants) {
        ExperimentConfig config = ConfigFor(machine, variant);
        config.seed = 11;
        const ExperimentResult r = RunExperiment(config, workload);
        std::printf(" %12.1f", r.underload_per_s);
      }
      std::printf("\n");
    }
  }
  return 0;
}
