// Reproduces Figure 4: underload per second for the configure workloads, on
// all four paper machines, with CFS and Nest under both governors. As in the
// paper, underload is based on a single run (seed 11).

#include "bench/bench_util.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 4: Configure underload per second",
              "Nest should almost eliminate the underload that CFS accumulates "
              "by choosing long-idle cores. (Absolute scale exceeds the paper's "
              "because the simulated scripts are fork-dense end to end; see "
              "EXPERIMENTS.md.)");
  const auto variants = StandardVariants();
  GridCampaign grid("fig4_configure_underload", PaperMachineNames(),
                    ConfigureWorkload::PackageNames(), variants,
                    [](size_t, const std::string& package) {
                      return std::make_shared<ConfigureWorkload>(package);
                    });
  grid.set_repetitions(BenchRepetitions(/*fallback=*/1));  // paper: a single run
  grid.set_base_seed(11);
  grid.Run();

  for (size_t m = 0; m < grid.machines().size(); ++m) {
    PrintMachineBanner(MachineByName(grid.machines()[m]));
    std::printf("%-14s %12s %12s %12s %12s\n", "package", "CFS sched", "CFS perf", "Nest sched",
                "Nest perf");
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      std::printf("%-14s", grid.rows()[r].c_str());
      for (size_t v = 0; v < variants.size(); ++v) {
        std::printf(" %12.1f", grid.result(m, r, v).runs[0].underload_per_s);
      }
      std::printf("\n");
    }
  }
  return 0;
}
