// Reproduces Figures 8/9: the h2 case study on the 4-socket Intel 6130.
//
// Paper: CFS-schedutil disperses h2's ~10 threads over most of a socket
// (sometimes several sockets — the "slow run" of Figure 9), leaving cores in
// low turbo; Nest concentrates them on ~10 cores at high turbo, and never
// splits them across sockets.

#include <set>

#include "bench/bench_util.h"
#include "src/workloads/dacapo.h"

using namespace nestsim;

namespace {

void RunCase(const char* label, SchedulerKind scheduler, uint64_t seed) {
  ExperimentConfig config;
  config.machine = "intel-6130-4s";
  config.scheduler = scheduler;
  config.governor = "schedutil";
  config.seed = seed;
  config.trace_label = std::string("fig8-h2-") + (scheduler == SchedulerKind::kCfs ? "cfs" : "nest");
  DacapoWorkload workload("h2");
  const ExperimentResult r = RunExperiment(config, workload);
  const MachineSpec& spec = MachineByName(config.machine);
  const Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);

  std::set<int> sockets;
  for (int cpu : r.cpus_used) {
    sockets.insert(topo.SocketOf(cpu));
  }
  std::printf("\n(%s, seed %llu) time %.3fs  cores used %zu  sockets touched %zu\n", label,
              static_cast<unsigned long long>(seed), r.seconds(), r.cpus_used.size(),
              sockets.size());
  std::printf("%s", r.freq_hist.Format(spec).c_str());
  if (!r.trace_file.empty()) {
    std::printf("perfetto trace: %s\n", r.trace_file.c_str());
  }
}

}  // namespace

int main() {
  PrintHeader("Figures 8/9: h2 case study (4-socket Intel 6130, schedutil)",
              "CFS spreads h2 widely at lower turbo; Nest concentrates it on few "
              "cores of one socket at high turbo. Several seeds show CFS's "
              "run-to-run dispersal variance (Figure 9's slow run).");
  const int reps = BenchRepetitions();  // NESTSIM_REPS controls the seed count
  for (int i = 0; i < reps; ++i) {
    RunCase("CFS-schedutil", SchedulerKind::kCfs, 1 + static_cast<uint64_t>(i));
  }
  for (int i = 0; i < reps; ++i) {
    RunCase("Nest-schedutil", SchedulerKind::kNest, 1 + static_cast<uint64_t>(i));
  }
  return 0;
}
