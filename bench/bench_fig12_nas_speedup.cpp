// Reproduces Figure 12: NAS Parallel Benchmarks speedups vs CFS-schedutil.
//
// Paper shape: on the 2-socket machines, Nest matches CFS (within ±5%) —
// one task per core leaves the nest nothing to improve, and it must not get
// in the way. On the 160-core E7-8870 v4, Nest's more work-conserving
// wakeups give substantial speedups (16% to >80%) on most kernels.

#include "bench/bench_util.h"
#include "src/workloads/nas.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 12: NAS speedups vs CFS-schedutil",
              "One OpenMP-style task per hardware thread; class C shapes.");
  const int reps = BenchRepetitions();
  const auto variants = StandardVariants();

  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("%-8s %16s %10s %10s %10s\n", "kernel", "CFS sched (s)", "CFS perf",
                "Nest sched", "Nest perf");
    for (const std::string& kernel_name : NasWorkload::KernelNames()) {
      NasWorkload workload(kernel_name);
      const RepeatedResult base = RunRepeated(ConfigFor(machine, variants[0]), workload, reps);
      std::printf("%-8s %9.2fs %4.1f%%", (kernel_name + ".C.x").c_str(), base.mean_seconds,
                  base.stddev_pct());
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult rr = RunRepeated(ConfigFor(machine, variants[v]), workload, reps);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
