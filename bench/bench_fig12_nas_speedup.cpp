// Reproduces Figure 12: NAS Parallel Benchmarks speedups vs CFS-schedutil.
//
// Paper shape: on the 2-socket machines, Nest matches CFS (within ±5%) —
// one task per core leaves the nest nothing to improve, and it must not get
// in the way. On the 160-core E7-8870 v4, Nest's more work-conserving
// wakeups give substantial speedups (16% to >80%) on most kernels.
//
// The grid, formats, and seeds live in scenarios/fig12.json; this binary is a
// thin wrapper so `bench_fig12_nas_speedup` and
// `nestsim_run scenarios/fig12.json` print byte-identical tables.

#include "src/scenario/runner.h"

int main() { return nestsim::RunScenarioFileMain("fig12.json"); }
