// Reproduces Figure 12: NAS Parallel Benchmarks speedups vs CFS-schedutil.
//
// Paper shape: on the 2-socket machines, Nest matches CFS (within ±5%) —
// one task per core leaves the nest nothing to improve, and it must not get
// in the way. On the 160-core E7-8870 v4, Nest's more work-conserving
// wakeups give substantial speedups (16% to >80%) on most kernels.

#include "bench/bench_util.h"
#include "src/workloads/nas.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 12: NAS speedups vs CFS-schedutil",
              "One OpenMP-style task per hardware thread; class C shapes.");
  const auto variants = StandardVariants();
  GridCampaign grid("fig12_nas_speedup", PaperMachineNames(), NasWorkload::KernelNames(),
                    variants, [](size_t, const std::string& kernel_name) {
                      return std::make_shared<NasWorkload>(kernel_name);
                    });
  grid.set_repetitions(BenchRepetitions());
  grid.Run();

  for (size_t m = 0; m < grid.machines().size(); ++m) {
    PrintMachineBanner(MachineByName(grid.machines()[m]));
    std::printf("%-8s %16s %10s %10s %10s\n", "kernel", "CFS sched (s)", "CFS perf",
                "Nest sched", "Nest perf");
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      const RepeatedResult& base = grid.result(m, r, 0);
      std::printf("%-8s %9.2fs %4.1f%%", (grid.rows()[r] + ".C.x").c_str(), base.mean_seconds,
                  base.stddev_pct());
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult& rr = grid.result(m, r, v);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
