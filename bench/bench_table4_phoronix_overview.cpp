// Reproduces Table 4: overview of the Phoronix multicore results — how many
// of the ~222 tests fall into each speedup band (>20% slower, 5-20% slower,
// within ±5%, 5-20% faster, >20% faster) for CFS-performance and
// Nest-schedutil vs CFS-schedutil.
//
// The population is the 27 Figure 13 tests plus seeded synthetic tests of the
// same styles (the real suite is a proprietary download; see DESIGN.md).

#include "bench/bench_util.h"
#include "src/workloads/phoronix.h"

using namespace nestsim;

namespace {

struct Bands {
  int much_slower = 0;  // < -20%
  int slower = 0;       // [-20%, -5%)
  int same = 0;         // [-5%, 5%]
  int faster = 0;       // (5%, 20%]
  int much_faster = 0;  // > 20%
  int total = 0;

  void Add(double pct) {
    ++total;
    if (pct < -20.0) {
      ++much_slower;
    } else if (pct < -5.0) {
      ++slower;
    } else if (pct <= 5.0) {
      ++same;
    } else if (pct <= 20.0) {
      ++faster;
    } else {
      ++much_faster;
    }
  }

  void Print(const char* label) const {
    auto pct = [this](int n) { return total > 0 ? 100 * n / total : 0; };
    std::printf("  %-12s %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%)\n", label,
                much_slower, pct(much_slower), slower, pct(slower), same, pct(same), faster,
                pct(faster), much_faster, pct(much_faster));
  }
};

}  // namespace

int main() {
  const int kTotalTests = 222;
  PrintHeader("Table 4: Phoronix multicore overview",
              "Counts of tests by speedup band vs CFS-schedutil. Columns: "
              ">20% slower | 5-20% slower | same (+-5%) | 5-20% faster | >20% faster");

  const auto named = PhoronixWorkload::Figure13TestNames();
  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    Bands perf_bands;
    Bands nest_bands;
    for (int i = 0; i < kTotalTests; ++i) {
      PhoronixSpec spec = i < static_cast<int>(named.size())
                              ? PhoronixWorkload::TestSpec(named[i])
                              : PhoronixWorkload::SyntheticSpec(i);
      PhoronixWorkload workload(spec);

      ExperimentConfig base = ConfigFor(machine, {"CFS sched", SchedulerKind::kCfs, "schedutil"});
      base.seed = 17;
      const double base_s = RunExperiment(base, workload).seconds();

      ExperimentConfig perf = base;
      perf.governor = "performance";
      perf_bands.Add(SpeedupPercent(base_s, RunExperiment(perf, workload).seconds()));

      ExperimentConfig nest = base;
      nest.scheduler = SchedulerKind::kNest;
      nest_bands.Add(SpeedupPercent(base_s, RunExperiment(nest, workload).seconds()));
    }
    perf_bands.Print("CFS-perf.");
    nest_bands.Print("Nest-sched.");
  }
  return 0;
}
