// Reproduces Table 4: overview of the Phoronix multicore results — how many
// of the ~222 tests fall into each speedup band (>20% slower, 5-20% slower,
// within ±5%, 5-20% faster, >20% faster) for CFS-performance and
// Nest-schedutil vs CFS-schedutil.
//
// The population is the 27 Figure 13 tests plus seeded synthetic tests of the
// same styles (the real suite is a proprietary download; see DESIGN.md).

#include "bench/bench_util.h"
#include "src/workloads/phoronix.h"

using namespace nestsim;

namespace {

struct Bands {
  int much_slower = 0;  // < -20%
  int slower = 0;       // [-20%, -5%)
  int same = 0;         // [-5%, 5%]
  int faster = 0;       // (5%, 20%]
  int much_faster = 0;  // > 20%
  int total = 0;

  void Add(double pct) {
    ++total;
    if (pct < -20.0) {
      ++much_slower;
    } else if (pct < -5.0) {
      ++slower;
    } else if (pct <= 5.0) {
      ++same;
    } else if (pct <= 20.0) {
      ++faster;
    } else {
      ++much_faster;
    }
  }

  void Print(const char* label) const {
    auto pct = [this](int n) { return total > 0 ? 100 * n / total : 0; };
    std::printf("  %-12s %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%)\n", label,
                much_slower, pct(much_slower), slower, pct(slower), same, pct(same), faster,
                pct(faster), much_faster, pct(much_faster));
  }
};

}  // namespace

int main() {
  const int kTotalTests = 222;
  PrintHeader("Table 4: Phoronix multicore overview",
              "Counts of tests by speedup band vs CFS-schedutil. Columns: "
              ">20% slower | 5-20% slower | same (+-5%) | 5-20% faster | >20% faster");

  const auto named = PhoronixWorkload::Figure13TestNames();
  std::vector<std::string> rows;
  rows.reserve(kTotalTests);
  for (int i = 0; i < kTotalTests; ++i) {
    rows.push_back(i < static_cast<int>(named.size()) ? named[i]
                                                      : "synthetic-" + std::to_string(i));
  }
  const std::vector<Variant> variants = {
      {"CFS sched", SchedulerKind::kCfs, "schedutil"},
      {"CFS perf", SchedulerKind::kCfs, "performance"},
      {"Nest sched", SchedulerKind::kNest, "schedutil"},
  };
  GridCampaign grid("table4_phoronix_overview", PaperMachineNames(), rows, variants,
                    [&named](size_t row_index, const std::string& row) {
                      const PhoronixSpec spec = row_index < named.size()
                                                    ? PhoronixWorkload::TestSpec(row)
                                                    : PhoronixWorkload::SyntheticSpec(
                                                          static_cast<int>(row_index));
                      return std::make_shared<PhoronixWorkload>(spec);
                    });
  grid.set_repetitions(BenchRepetitions(/*fallback=*/1));  // paper: a single run
  grid.set_base_seed(17);
  grid.Run();

  for (size_t m = 0; m < grid.machines().size(); ++m) {
    PrintMachineBanner(MachineByName(grid.machines()[m]));
    Bands perf_bands;
    Bands nest_bands;
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      const double base_s = grid.result(m, r, 0).runs[0].seconds();
      perf_bands.Add(SpeedupPercent(base_s, grid.result(m, r, 1).runs[0].seconds()));
      nest_bands.Add(SpeedupPercent(base_s, grid.result(m, r, 2).runs[0].seconds()));
    }
    perf_bands.Print("CFS-perf.");
    nest_bands.Print("Nest-sched.");
  }
  return 0;
}
