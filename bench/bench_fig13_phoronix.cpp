// Reproduces Figure 13: the highlighted Phoronix multicore tests — those
// where CFS-performance or Nest-schedutil moved the needle by >=20% somewhere
// in the paper. Values are speedups vs CFS-schedutil.

#include "bench/bench_util.h"
#include "src/workloads/phoronix.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 13: Phoronix multicore highlight tests",
              "Speedup vs CFS-schedutil for CFS-performance and Nest-schedutil "
              "(the paper's two headline columns).");
  const int reps = BenchRepetitions();
  const Variant base_variant{"CFS sched", SchedulerKind::kCfs, "schedutil"};
  const std::vector<Variant> variants = {
      {"CFS perf", SchedulerKind::kCfs, "performance"},
      {"Nest sched", SchedulerKind::kNest, "schedutil"},
  };

  for (const std::string& machine : PaperMachineNames()) {
    PrintMachineBanner(MachineByName(machine));
    std::printf("%-22s %16s %10s %10s\n", "test", "CFS sched (s)", "CFS perf", "Nest sched");
    for (const std::string& test : PhoronixWorkload::Figure13TestNames()) {
      PhoronixWorkload workload(test);
      const RepeatedResult base = RunRepeated(ConfigFor(machine, base_variant), workload, reps);
      std::printf("%-22s %9.2fs %4.1f%%", test.c_str(), base.mean_seconds, base.stddev_pct());
      for (const Variant& variant : variants) {
        const RepeatedResult rr = RunRepeated(ConfigFor(machine, variant), workload, reps);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
