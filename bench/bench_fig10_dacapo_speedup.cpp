// Reproduces Figure 10: DaCapo speedups vs CFS-schedutil on all four
// machines. The paper's shape: single-task apps (batik, fop, jython, ...)
// within +-5%; high-underload apps (h2, tradebeans, graphchi-eval,
// tomcat-eval) gain substantially with Nest.

#include "bench/bench_util.h"
#include "src/workloads/dacapo.h"

using namespace nestsim;

int main() {
  PrintHeader("Figure 10: DaCapo speedups vs CFS-schedutil",
              "u/s column is the baseline underload per second (the paper's "
              "'u:' annotation); high-underload apps are where Nest wins.");
  const auto variants = StandardVariants();
  GridCampaign grid(
      "fig10_dacapo_speedup", PaperMachineNames(), DacapoWorkload::AppNames(), variants,
      [](size_t, const std::string& app) { return std::make_shared<DacapoWorkload>(app); });
  grid.set_repetitions(BenchRepetitions());
  grid.Run();

  for (size_t m = 0; m < grid.machines().size(); ++m) {
    PrintMachineBanner(MachineByName(grid.machines()[m]));
    std::printf("%-16s %16s %7s %10s %10s %10s\n", "app", "CFS sched (s)", "u/s", "CFS perf",
                "Nest sched", "Nest perf");
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      const RepeatedResult& base = grid.result(m, r, 0);
      std::printf("%-16s %9.2fs %4.1f%% %7.1f", grid.rows()[r].c_str(), base.mean_seconds,
                  base.stddev_pct(), base.mean_underload_per_s);
      for (size_t v = 1; v < variants.size(); ++v) {
        const RepeatedResult& rr = grid.result(m, r, v);
        std::printf(" %10s",
                    FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
