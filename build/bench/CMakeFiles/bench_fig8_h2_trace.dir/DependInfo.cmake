
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_h2_trace.cpp" "bench/CMakeFiles/bench_fig8_h2_trace.dir/bench_fig8_h2_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_h2_trace.dir/bench_fig8_h2_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nestsim_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
