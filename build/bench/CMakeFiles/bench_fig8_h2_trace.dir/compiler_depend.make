# Empty compiler generated dependencies file for bench_fig8_h2_trace.
# This may be replaced when dependencies are built.
