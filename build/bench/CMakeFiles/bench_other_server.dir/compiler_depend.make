# Empty compiler generated dependencies file for bench_other_server.
# This may be replaced when dependencies are built.
