file(REMOVE_RECURSE
  "CMakeFiles/bench_other_server.dir/bench_other_server.cpp.o"
  "CMakeFiles/bench_other_server.dir/bench_other_server.cpp.o.d"
  "bench_other_server"
  "bench_other_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
