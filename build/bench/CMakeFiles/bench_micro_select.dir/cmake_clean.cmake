file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_select.dir/bench_micro_select.cpp.o"
  "CMakeFiles/bench_micro_select.dir/bench_micro_select.cpp.o.d"
  "bench_micro_select"
  "bench_micro_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
