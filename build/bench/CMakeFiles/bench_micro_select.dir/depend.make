# Empty dependencies file for bench_micro_select.
# This may be replaced when dependencies are built.
