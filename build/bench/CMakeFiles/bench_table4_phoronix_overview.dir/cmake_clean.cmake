file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_phoronix_overview.dir/bench_table4_phoronix_overview.cpp.o"
  "CMakeFiles/bench_table4_phoronix_overview.dir/bench_table4_phoronix_overview.cpp.o.d"
  "bench_table4_phoronix_overview"
  "bench_table4_phoronix_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_phoronix_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
