# Empty compiler generated dependencies file for bench_table4_phoronix_overview.
# This may be replaced when dependencies are built.
