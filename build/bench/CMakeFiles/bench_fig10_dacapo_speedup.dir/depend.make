# Empty dependencies file for bench_fig10_dacapo_speedup.
# This may be replaced when dependencies are built.
