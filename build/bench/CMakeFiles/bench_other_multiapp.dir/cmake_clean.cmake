file(REMOVE_RECURSE
  "CMakeFiles/bench_other_multiapp.dir/bench_other_multiapp.cpp.o"
  "CMakeFiles/bench_other_multiapp.dir/bench_other_multiapp.cpp.o.d"
  "bench_other_multiapp"
  "bench_other_multiapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_multiapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
