# Empty dependencies file for bench_other_multiapp.
# This may be replaced when dependencies are built.
