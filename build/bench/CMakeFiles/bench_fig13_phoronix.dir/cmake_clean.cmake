file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_phoronix.dir/bench_fig13_phoronix.cpp.o"
  "CMakeFiles/bench_fig13_phoronix.dir/bench_fig13_phoronix.cpp.o.d"
  "bench_fig13_phoronix"
  "bench_fig13_phoronix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_phoronix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
