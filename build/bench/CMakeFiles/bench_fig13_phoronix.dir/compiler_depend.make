# Empty compiler generated dependencies file for bench_fig13_phoronix.
# This may be replaced when dependencies are built.
