file(REMOVE_RECURSE
  "CMakeFiles/bench_other_hackbench.dir/bench_other_hackbench.cpp.o"
  "CMakeFiles/bench_other_hackbench.dir/bench_other_hackbench.cpp.o.d"
  "bench_other_hackbench"
  "bench_other_hackbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_hackbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
