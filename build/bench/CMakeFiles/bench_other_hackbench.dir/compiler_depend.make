# Empty compiler generated dependencies file for bench_other_hackbench.
# This may be replaced when dependencies are built.
