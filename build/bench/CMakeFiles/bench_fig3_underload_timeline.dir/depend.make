# Empty dependencies file for bench_fig3_underload_timeline.
# This may be replaced when dependencies are built.
