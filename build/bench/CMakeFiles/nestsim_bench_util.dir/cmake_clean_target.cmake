file(REMOVE_RECURSE
  "libnestsim_bench_util.a"
)
