# Empty dependencies file for nestsim_bench_util.
# This may be replaced when dependencies are built.
