file(REMOVE_RECURSE
  "CMakeFiles/nestsim_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/nestsim_bench_util.dir/bench_util.cc.o.d"
  "libnestsim_bench_util.a"
  "libnestsim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
