file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_turbo.dir/bench_table3_turbo.cpp.o"
  "CMakeFiles/bench_table3_turbo.dir/bench_table3_turbo.cpp.o.d"
  "bench_table3_turbo"
  "bench_table3_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
