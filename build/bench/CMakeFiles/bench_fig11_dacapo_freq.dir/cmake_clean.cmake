file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dacapo_freq.dir/bench_fig11_dacapo_freq.cpp.o"
  "CMakeFiles/bench_fig11_dacapo_freq.dir/bench_fig11_dacapo_freq.cpp.o.d"
  "bench_fig11_dacapo_freq"
  "bench_fig11_dacapo_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dacapo_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
