# Empty compiler generated dependencies file for bench_fig11_dacapo_freq.
# This may be replaced when dependencies are built.
