# Empty compiler generated dependencies file for bench_fig7_configure_energy.
# This may be replaced when dependencies are built.
