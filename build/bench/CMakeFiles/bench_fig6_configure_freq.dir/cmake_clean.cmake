file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_configure_freq.dir/bench_fig6_configure_freq.cpp.o"
  "CMakeFiles/bench_fig6_configure_freq.dir/bench_fig6_configure_freq.cpp.o.d"
  "bench_fig6_configure_freq"
  "bench_fig6_configure_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_configure_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
