# Empty dependencies file for bench_fig4_configure_underload.
# This may be replaced when dependencies are built.
