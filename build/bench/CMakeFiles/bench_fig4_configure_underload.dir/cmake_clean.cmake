file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_configure_underload.dir/bench_fig4_configure_underload.cpp.o"
  "CMakeFiles/bench_fig4_configure_underload.dir/bench_fig4_configure_underload.cpp.o.d"
  "bench_fig4_configure_underload"
  "bench_fig4_configure_underload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_configure_underload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
