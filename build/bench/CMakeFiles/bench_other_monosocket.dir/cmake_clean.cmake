file(REMOVE_RECURSE
  "CMakeFiles/bench_other_monosocket.dir/bench_other_monosocket.cpp.o"
  "CMakeFiles/bench_other_monosocket.dir/bench_other_monosocket.cpp.o.d"
  "bench_other_monosocket"
  "bench_other_monosocket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_monosocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
