# Empty dependencies file for bench_other_monosocket.
# This may be replaced when dependencies are built.
