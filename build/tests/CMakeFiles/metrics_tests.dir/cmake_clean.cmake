file(REMOVE_RECURSE
  "CMakeFiles/metrics_tests.dir/metrics/export_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/export_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/freq_hist_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/freq_hist_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/stats_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/stats_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/trace_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/trace_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/underload_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/underload_test.cc.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/work_conservation_test.cc.o"
  "CMakeFiles/metrics_tests.dir/metrics/work_conservation_test.cc.o.d"
  "metrics_tests"
  "metrics_tests.pdb"
  "metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
