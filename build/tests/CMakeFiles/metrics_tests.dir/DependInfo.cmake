
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/export_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/export_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/export_test.cc.o.d"
  "/root/repo/tests/metrics/freq_hist_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/freq_hist_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/freq_hist_test.cc.o.d"
  "/root/repo/tests/metrics/stats_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/stats_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/stats_test.cc.o.d"
  "/root/repo/tests/metrics/trace_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/trace_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/trace_test.cc.o.d"
  "/root/repo/tests/metrics/underload_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/underload_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/underload_test.cc.o.d"
  "/root/repo/tests/metrics/work_conservation_test.cc" "tests/CMakeFiles/metrics_tests.dir/metrics/work_conservation_test.cc.o" "gcc" "tests/CMakeFiles/metrics_tests.dir/metrics/work_conservation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
