
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/invariants_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cc.o.d"
  "/root/repo/tests/integration/paper_shape_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/paper_shape_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/paper_shape_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
