file(REMOVE_RECURSE
  "CMakeFiles/kernel_tests.dir/kernel/domains_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/domains_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/kernel_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/kernel_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/pelt_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/pelt_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/program_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/program_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/run_queue_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/run_queue_test.cc.o.d"
  "kernel_tests"
  "kernel_tests.pdb"
  "kernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
