file(REMOVE_RECURSE
  "CMakeFiles/policy_tests.dir/cfs/cfs_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/cfs/cfs_policy_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/governors/governors_test.cc.o"
  "CMakeFiles/policy_tests.dir/governors/governors_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/nest/nest_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/nest/nest_policy_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/smove/smove_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/smove/smove_policy_test.cc.o.d"
  "policy_tests"
  "policy_tests.pdb"
  "policy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
