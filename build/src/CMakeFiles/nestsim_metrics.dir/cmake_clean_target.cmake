file(REMOVE_RECURSE
  "libnestsim_metrics.a"
)
