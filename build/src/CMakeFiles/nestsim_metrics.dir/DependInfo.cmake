
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/freq_hist.cc" "src/CMakeFiles/nestsim_metrics.dir/metrics/freq_hist.cc.o" "gcc" "src/CMakeFiles/nestsim_metrics.dir/metrics/freq_hist.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/CMakeFiles/nestsim_metrics.dir/metrics/stats.cc.o" "gcc" "src/CMakeFiles/nestsim_metrics.dir/metrics/stats.cc.o.d"
  "/root/repo/src/metrics/trace.cc" "src/CMakeFiles/nestsim_metrics.dir/metrics/trace.cc.o" "gcc" "src/CMakeFiles/nestsim_metrics.dir/metrics/trace.cc.o.d"
  "/root/repo/src/metrics/underload.cc" "src/CMakeFiles/nestsim_metrics.dir/metrics/underload.cc.o" "gcc" "src/CMakeFiles/nestsim_metrics.dir/metrics/underload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
