file(REMOVE_RECURSE
  "CMakeFiles/nestsim_metrics.dir/metrics/freq_hist.cc.o"
  "CMakeFiles/nestsim_metrics.dir/metrics/freq_hist.cc.o.d"
  "CMakeFiles/nestsim_metrics.dir/metrics/stats.cc.o"
  "CMakeFiles/nestsim_metrics.dir/metrics/stats.cc.o.d"
  "CMakeFiles/nestsim_metrics.dir/metrics/trace.cc.o"
  "CMakeFiles/nestsim_metrics.dir/metrics/trace.cc.o.d"
  "CMakeFiles/nestsim_metrics.dir/metrics/underload.cc.o"
  "CMakeFiles/nestsim_metrics.dir/metrics/underload.cc.o.d"
  "libnestsim_metrics.a"
  "libnestsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
