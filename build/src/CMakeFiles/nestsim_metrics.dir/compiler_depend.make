# Empty compiler generated dependencies file for nestsim_metrics.
# This may be replaced when dependencies are built.
