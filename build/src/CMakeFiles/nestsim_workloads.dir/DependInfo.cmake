
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/configure.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/configure.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/configure.cc.o.d"
  "/root/repo/src/workloads/dacapo.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/dacapo.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/dacapo.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/multi.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/multi.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/multi.cc.o.d"
  "/root/repo/src/workloads/nas.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/nas.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/nas.cc.o.d"
  "/root/repo/src/workloads/phoronix.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/phoronix.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/phoronix.cc.o.d"
  "/root/repo/src/workloads/server.cc" "src/CMakeFiles/nestsim_workloads.dir/workloads/server.cc.o" "gcc" "src/CMakeFiles/nestsim_workloads.dir/workloads/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
