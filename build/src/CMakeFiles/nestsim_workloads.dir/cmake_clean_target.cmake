file(REMOVE_RECURSE
  "libnestsim_workloads.a"
)
