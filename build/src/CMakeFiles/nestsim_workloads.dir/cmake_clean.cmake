file(REMOVE_RECURSE
  "CMakeFiles/nestsim_workloads.dir/workloads/configure.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/configure.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/dacapo.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/dacapo.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/micro.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/micro.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/multi.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/multi.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/nas.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/nas.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/phoronix.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/phoronix.cc.o.d"
  "CMakeFiles/nestsim_workloads.dir/workloads/server.cc.o"
  "CMakeFiles/nestsim_workloads.dir/workloads/server.cc.o.d"
  "libnestsim_workloads.a"
  "libnestsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
