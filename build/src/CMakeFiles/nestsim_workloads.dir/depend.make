# Empty dependencies file for nestsim_workloads.
# This may be replaced when dependencies are built.
