
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/nestsim_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/nestsim_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/metrics/export.cc" "src/CMakeFiles/nestsim_core.dir/metrics/export.cc.o" "gcc" "src/CMakeFiles/nestsim_core.dir/metrics/export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
