# Empty dependencies file for nestsim_core.
# This may be replaced when dependencies are built.
