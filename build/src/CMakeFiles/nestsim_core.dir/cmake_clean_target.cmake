file(REMOVE_RECURSE
  "libnestsim_core.a"
)
