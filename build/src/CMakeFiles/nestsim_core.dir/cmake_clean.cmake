file(REMOVE_RECURSE
  "CMakeFiles/nestsim_core.dir/core/experiment.cc.o"
  "CMakeFiles/nestsim_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/nestsim_core.dir/metrics/export.cc.o"
  "CMakeFiles/nestsim_core.dir/metrics/export.cc.o.d"
  "libnestsim_core.a"
  "libnestsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
