file(REMOVE_RECURSE
  "libnestsim_sim.a"
)
