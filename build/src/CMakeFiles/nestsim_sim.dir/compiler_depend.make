# Empty compiler generated dependencies file for nestsim_sim.
# This may be replaced when dependencies are built.
