file(REMOVE_RECURSE
  "CMakeFiles/nestsim_sim.dir/sim/engine.cc.o"
  "CMakeFiles/nestsim_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/nestsim_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/nestsim_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/nestsim_sim.dir/sim/log.cc.o"
  "CMakeFiles/nestsim_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/nestsim_sim.dir/sim/random.cc.o"
  "CMakeFiles/nestsim_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/nestsim_sim.dir/sim/time.cc.o"
  "CMakeFiles/nestsim_sim.dir/sim/time.cc.o.d"
  "libnestsim_sim.a"
  "libnestsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
