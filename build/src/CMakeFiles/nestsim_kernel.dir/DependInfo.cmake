
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/domains.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/domains.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/domains.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/pelt.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/pelt.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/pelt.cc.o.d"
  "/root/repo/src/kernel/program.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/program.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/program.cc.o.d"
  "/root/repo/src/kernel/run_queue.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/run_queue.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/run_queue.cc.o.d"
  "/root/repo/src/kernel/sync.cc" "src/CMakeFiles/nestsim_kernel.dir/kernel/sync.cc.o" "gcc" "src/CMakeFiles/nestsim_kernel.dir/kernel/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
