file(REMOVE_RECURSE
  "CMakeFiles/nestsim_kernel.dir/kernel/domains.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/domains.cc.o.d"
  "CMakeFiles/nestsim_kernel.dir/kernel/kernel.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/kernel.cc.o.d"
  "CMakeFiles/nestsim_kernel.dir/kernel/pelt.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/pelt.cc.o.d"
  "CMakeFiles/nestsim_kernel.dir/kernel/program.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/program.cc.o.d"
  "CMakeFiles/nestsim_kernel.dir/kernel/run_queue.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/run_queue.cc.o.d"
  "CMakeFiles/nestsim_kernel.dir/kernel/sync.cc.o"
  "CMakeFiles/nestsim_kernel.dir/kernel/sync.cc.o.d"
  "libnestsim_kernel.a"
  "libnestsim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
