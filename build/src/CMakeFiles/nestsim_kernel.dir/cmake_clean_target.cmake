file(REMOVE_RECURSE
  "libnestsim_kernel.a"
)
