# Empty dependencies file for nestsim_kernel.
# This may be replaced when dependencies are built.
