# Empty compiler generated dependencies file for nestsim_policies.
# This may be replaced when dependencies are built.
