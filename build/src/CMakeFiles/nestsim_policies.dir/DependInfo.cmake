
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfs/cfs_policy.cc" "src/CMakeFiles/nestsim_policies.dir/cfs/cfs_policy.cc.o" "gcc" "src/CMakeFiles/nestsim_policies.dir/cfs/cfs_policy.cc.o.d"
  "/root/repo/src/governors/governors.cc" "src/CMakeFiles/nestsim_policies.dir/governors/governors.cc.o" "gcc" "src/CMakeFiles/nestsim_policies.dir/governors/governors.cc.o.d"
  "/root/repo/src/nest/nest_policy.cc" "src/CMakeFiles/nestsim_policies.dir/nest/nest_policy.cc.o" "gcc" "src/CMakeFiles/nestsim_policies.dir/nest/nest_policy.cc.o.d"
  "/root/repo/src/smove/smove_policy.cc" "src/CMakeFiles/nestsim_policies.dir/smove/smove_policy.cc.o" "gcc" "src/CMakeFiles/nestsim_policies.dir/smove/smove_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nestsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
