file(REMOVE_RECURSE
  "CMakeFiles/nestsim_policies.dir/cfs/cfs_policy.cc.o"
  "CMakeFiles/nestsim_policies.dir/cfs/cfs_policy.cc.o.d"
  "CMakeFiles/nestsim_policies.dir/governors/governors.cc.o"
  "CMakeFiles/nestsim_policies.dir/governors/governors.cc.o.d"
  "CMakeFiles/nestsim_policies.dir/nest/nest_policy.cc.o"
  "CMakeFiles/nestsim_policies.dir/nest/nest_policy.cc.o.d"
  "CMakeFiles/nestsim_policies.dir/smove/smove_policy.cc.o"
  "CMakeFiles/nestsim_policies.dir/smove/smove_policy.cc.o.d"
  "libnestsim_policies.a"
  "libnestsim_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
