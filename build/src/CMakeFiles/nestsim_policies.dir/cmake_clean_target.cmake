file(REMOVE_RECURSE
  "libnestsim_policies.a"
)
