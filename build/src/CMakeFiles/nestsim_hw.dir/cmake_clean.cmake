file(REMOVE_RECURSE
  "CMakeFiles/nestsim_hw.dir/hw/hardware.cc.o"
  "CMakeFiles/nestsim_hw.dir/hw/hardware.cc.o.d"
  "CMakeFiles/nestsim_hw.dir/hw/machine_spec.cc.o"
  "CMakeFiles/nestsim_hw.dir/hw/machine_spec.cc.o.d"
  "CMakeFiles/nestsim_hw.dir/hw/topology.cc.o"
  "CMakeFiles/nestsim_hw.dir/hw/topology.cc.o.d"
  "libnestsim_hw.a"
  "libnestsim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestsim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
