# Empty compiler generated dependencies file for nestsim_hw.
# This may be replaced when dependencies are built.
