file(REMOVE_RECURSE
  "libnestsim_hw.a"
)
