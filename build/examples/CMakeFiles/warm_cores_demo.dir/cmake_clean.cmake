file(REMOVE_RECURSE
  "CMakeFiles/warm_cores_demo.dir/warm_cores_demo.cpp.o"
  "CMakeFiles/warm_cores_demo.dir/warm_cores_demo.cpp.o.d"
  "warm_cores_demo"
  "warm_cores_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_cores_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
