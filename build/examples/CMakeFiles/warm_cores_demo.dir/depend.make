# Empty dependencies file for warm_cores_demo.
# This may be replaced when dependencies are built.
