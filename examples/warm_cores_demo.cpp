// warm_cores_demo: the paper's core idea, visualised.
//
// Runs the same fork-heavy script under CFS and Nest and prints a per-core
// activity map plus the frequency story — reuse cores + keep them warm means
// fewer, faster cores. A miniature of the paper's Figure 2 case study.
//
//   ./build/examples/warm_cores_demo [machine]

#include <cstdio>
#include <map>
#include <string>

#include "src/core/experiment.h"
#include "src/metrics/stats.h"
#include "src/workloads/configure.h"

using namespace nestsim;

namespace {

void Show(const char* label, const ExperimentConfig& config, const Workload& workload) {
  const ExperimentResult r = RunExperiment(config, workload);
  const MachineSpec& spec = MachineByName(config.machine);

  // Busy share per core over the run.
  std::map<int, double> busy_s;
  for (const ExecSegment& seg : r.trace) {
    busy_s[seg.cpu] += ToSeconds(seg.end - seg.start);
  }

  std::printf("\n=== %s ===  time %.3fs  energy %.1fJ  underload/s %.1f\n", label, r.seconds(),
              r.energy_joules, r.underload_per_s);
  std::printf("core activity (one row per used core, # = 2%% busy):\n");
  for (const auto& [cpu, busy] : busy_s) {
    const int hashes = static_cast<int>(50.0 * busy / r.seconds());
    std::printf("  core %3d |%-50.*s| %4.1f%%\n", cpu, hashes,
                "##################################################", 100.0 * busy / r.seconds());
  }
  std::printf("frequency residency while executing:\n%s", r.freq_hist.Format(spec).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string machine = argc > 1 ? argv[1] : "intel-5218-2s";
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("llvm_ninja");
  spec.num_tests = 120;  // keep the map readable
  ConfigureWorkload workload(spec);

  ExperimentConfig config;
  config.machine = machine;
  config.governor = "schedutil";
  config.record_trace = true;
  config.seed = 7;

  std::printf("Reuse cores + keep cores warm (paper Figure 2, miniature)\n");
  std::printf("workload: %s on %s\n", workload.name().c_str(), machine.c_str());

  config.scheduler = SchedulerKind::kCfs;
  Show("CFS-schedutil", config, workload);
  config.scheduler = SchedulerKind::kNest;
  Show("Nest-schedutil", config, workload);
  return 0;
}
