// custom_policy: extending the simulator with your own scheduler.
//
// Implements a deliberately naive "random placement" policy against the
// SchedulerPolicy interface and races it against CFS and Nest on a mixed
// workload. Shows everything a downstream scheduler researcher needs: the
// selection hooks, kernel introspection, and the experiment harness driven
// with a custom policy.
//
//   ./build/examples/custom_policy

#include <cstdio>
#include <memory>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "src/metrics/freq_hist.h"
#include "src/metrics/stats.h"
#include "src/metrics/underload.h"
#include "src/nest/nest_policy.h"
#include "src/workloads/configure.h"

using namespace nestsim;

namespace {

// Places every fork and wakeup on a uniformly random idle CPU (falling back
// to a random CPU when nothing is idle). Maximally work-conserving, zero
// locality — a useful lower bound for placement quality.
class RandomPolicy : public SchedulerPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "random"; }

  int SelectCpuFork(Task& task, int parent_cpu) override {
    (void)parent_cpu;
    return Pick(task);
  }
  int SelectCpuWake(Task& task, const WakeContext& ctx) override {
    (void)ctx;
    return Pick(task);
  }

 private:
  int Pick(Task&) {
    const int n = kernel_->topology().num_cpus();
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int cpu = static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(n)));
      if (kernel_->CpuIdle(cpu)) {
        return cpu;
      }
    }
    return static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(n)));
  }

  Rng rng_;
};

// Runs one policy instance through the full stack by hand (the long way —
// RunExperiment does this for the built-in policies).
void Race(const char* label, SchedulerPolicy* policy, const Workload& workload) {
  Engine engine;
  const MachineSpec& spec = MachineByName("intel-5218-2s");
  HardwareModel hw(&engine, spec);
  SchedutilGovernor governor;
  Kernel kernel(&engine, &hw, policy, &governor);
  UnderloadTracker underload(&kernel);
  FreqResidencyTracker freq(&kernel, FreqBucketEdgesFor(spec));
  kernel.AddObserver(&underload);
  kernel.AddObserver(&freq);
  kernel.Start();

  Rng rng(5);
  workload.Setup(kernel, rng);
  while (kernel.live_tasks() > 0) {
    engine.Step();
  }
  const SimTime end = engine.Now();
  std::printf("  %-8s %8.3f s   energy %7.1f J   underload/s %6.1f   top-2 freq share %4.1f%%\n",
              label, ToSeconds(end), hw.EnergyJoules(), underload.UnderloadPerSecond(end),
              100.0 * freq.Snapshot(end).TopShare(2));
}

}  // namespace

int main() {
  ConfigureWorkload workload("mplayer");
  std::printf("Custom-policy showdown on intel-5218-2s, workload %s\n",
              workload.name().c_str());
  std::printf("(random placement is work-conserving but ruins core reuse — watch the\n"
              " underload and the frequency share)\n\n");

  RandomPolicy random_policy(123);
  CfsPolicy cfs;
  NestPolicy nest;
  Race("random", &random_policy, workload);
  Race("CFS", &cfs, workload);
  Race("Nest", &nest, workload);
  return 0;
}
