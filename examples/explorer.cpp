// explorer: command-line experiment runner over every built-in workload.
//
//   ./build/examples/explorer [--machine M] [--sched cfs|nest|smove]
//                             [--governor schedutil|performance]
//                             [--workload FAMILY:NAME] [--seed N] [--verbose]
//
// Workload families: configure:<package>, dacapo:<app>, nas:<kernel>,
// phoronix:<test>, server:<test>, hackbench, schbench. Prints the full metric
// run — handy for exploring scheduler behaviour beyond the paper's tables.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/metrics/stats.h"
#include "src/sim/log.h"
#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"
#include "src/workloads/micro.h"
#include "src/workloads/nas.h"
#include "src/workloads/phoronix.h"
#include "src/workloads/server.h"

using namespace nestsim;

namespace {

std::unique_ptr<Workload> MakeWorkload(const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string name = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (family == "configure") {
    return std::make_unique<ConfigureWorkload>(name.empty() ? "llvm_ninja" : name);
  }
  if (family == "dacapo") {
    return std::make_unique<DacapoWorkload>(name.empty() ? "h2" : name);
  }
  if (family == "nas") {
    return std::make_unique<NasWorkload>(name.empty() ? "lu" : name);
  }
  if (family == "phoronix") {
    return std::make_unique<PhoronixWorkload>(name.empty() ? "zstd compression 7" : name);
  }
  if (family == "server") {
    return std::make_unique<ServerWorkload>(name.empty() ? "nginx" : name);
  }
  if (family == "hackbench") {
    return std::make_unique<HackbenchWorkload>(HackbenchSpec{});
  }
  if (family == "schbench") {
    return std::make_unique<SchbenchWorkload>(SchbenchSpec{});
  }
  std::fprintf(stderr, "unknown workload '%s'\n", spec.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config;
  std::string workload_spec = "configure:llvm_ninja";
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--machine") == 0) {
      config.machine = next();
    } else if (std::strcmp(argv[i], "--sched") == 0) {
      const std::string s = next();
      config.scheduler = s == "nest"    ? SchedulerKind::kNest
                         : s == "smove" ? SchedulerKind::kSmove
                                        : SchedulerKind::kCfs;
    } else if (std::strcmp(argv[i], "--governor") == 0) {
      config.governor = next();
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      workload_spec = next();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      SetLogLevel(LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  std::unique_ptr<Workload> workload = MakeWorkload(workload_spec);
  config.record_latency = true;
  const ExperimentResult r = RunExperiment(config, *workload);
  const MachineSpec& spec = MachineByName(config.machine);

  std::printf("workload      %s on %s, %s + %s (seed %llu)\n", workload->name().c_str(),
              config.machine.c_str(), SchedulerKindName(config.scheduler),
              config.governor.c_str(), static_cast<unsigned long long>(config.seed));
  std::printf("makespan      %.4f s%s\n", r.seconds(), r.hit_time_limit ? "  [TIME LIMIT HIT]" : "");
  std::printf("energy        %.1f J (avg %.1f W)\n", r.energy_joules,
              r.seconds() > 0 ? r.energy_joules / r.seconds() : 0.0);
  std::printf("underload/s   %.2f\n", r.underload_per_s);
  std::printf("tasks         %d created, %llu context switches, %llu migrations\n",
              r.tasks_created, static_cast<unsigned long long>(r.context_switches),
              static_cast<unsigned long long>(r.migrations));
  std::printf("cores used    %zu\n", r.cpus_used.size());
  std::printf("p50/p99 wake  %.1f / %.1f us\n", r.p50_wakeup_latency_us, r.p99_wakeup_latency_us);
  if (config.scheduler == SchedulerKind::kSmove) {
    std::printf("smove         %lld armed, %lld moved\n",
                static_cast<long long>(r.smove_moves_armed),
                static_cast<long long>(r.smove_moves_fired));
  }
  std::printf("freq residency:\n%s", r.freq_hist.Format(spec).c_str());
  return 0;
}
