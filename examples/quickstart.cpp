// Quickstart: run one workload under CFS and under Nest and compare.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart [machine] [package]
//
// This exercises the whole public API: pick a machine model, build an
// ExperimentConfig per scheduler/governor, run a workload, and read the
// metrics the paper reports (makespan, CPU energy, underload, frequency
// residency).

#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/metrics/stats.h"
#include "src/workloads/configure.h"

using namespace nestsim;

int main(int argc, char** argv) {
  const std::string machine = argc > 1 ? argv[1] : "intel-5218-2s";
  const std::string package = argc > 2 ? argv[2] : "llvm_ninja";

  ConfigureWorkload workload(package);
  const MachineSpec& spec = MachineByName(machine);
  std::printf("machine : %s (%s, %d sockets x %d cores x %d threads)\n", spec.name.c_str(),
              spec.cpu_model.c_str(), spec.num_sockets, spec.physical_cores_per_socket,
              spec.threads_per_core);
  std::printf("workload: %s\n\n", workload.name().c_str());

  ExperimentConfig base;
  base.machine = machine;
  base.governor = "schedutil";
  base.seed = 42;

  ExperimentConfig cfs = base;
  cfs.scheduler = SchedulerKind::kCfs;
  ExperimentConfig nest = base;
  nest.scheduler = SchedulerKind::kNest;

  const ExperimentResult r_cfs = RunExperiment(cfs, workload);
  const ExperimentResult r_nest = RunExperiment(nest, workload);

  auto report = [&](const char* label, const ExperimentResult& r) {
    std::printf("%-14s time %7.3f s   energy %7.1f J   underload/s %5.2f   cores used %zu\n",
                label, r.seconds(), r.energy_joules, r.underload_per_s, r.cpus_used.size());
    std::printf("%s", r.freq_hist.Format(spec).c_str());
  };
  report("CFS-schedutil", r_cfs);
  report("Nest-schedutil", r_nest);

  std::printf("\nNest speedup vs CFS: %+.1f%%   energy saving: %+.1f%%\n",
              SpeedupPercent(r_cfs.seconds(), r_nest.seconds()),
              SpeedupPercent(r_cfs.energy_joules, r_nest.energy_joules));
  return 0;
}
