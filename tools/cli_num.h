// Strict numeric parsing for tool command lines.
//
// atoi/atof silently turn "abc" into 0 and "3x" into 3, which let bad flag
// values slip through as nonsense defaults. These helpers accept a value only
// when the whole string parses and the result is in range; callers print a
// diagnostic naming the flag and exit 2 otherwise.

#ifndef NESTSIM_TOOLS_CLI_NUM_H_
#define NESTSIM_TOOLS_CLI_NUM_H_

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace nestsim {

// Whole-string base-10 integer in [min_value, max_value]. Rejects empty
// strings, trailing junk ("3x"), and out-of-range values.
inline bool ParseCliInt(const char* text, long min_value, long max_value, long* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    return false;
  }
  if (value < min_value || value > max_value) {
    return false;
  }
  *out = value;
  return true;
}

// Whole-string integer > 0 that fits an int.
inline bool ParseCliPositiveInt(const char* text, int* out) {
  long value = 0;
  if (!ParseCliInt(text, 1, INT_MAX, &value)) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

// Whole-string finite double > 0. Rejects "0", negatives, "nan", "inf", and
// trailing junk.
inline bool ParseCliPositiveDouble(const char* text, double* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0') {
    return false;
  }
  if (!std::isfinite(value) || value <= 0.0) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace nestsim

#endif  // NESTSIM_TOOLS_CLI_NUM_H_
