// nestsim_run: execute declarative experiment scenarios (docs/SCENARIOS.md).
//
//   nestsim_run scenarios/fig5.json               run + print the paper table
//   nestsim_run --print-jobs scenarios/fig5.json  show the expanded job grid
//   nestsim_run --record-baseline scenarios/smoke.json   write golden JSONL
//   nestsim_run --check-baseline scenarios/smoke.json    compare vs golden,
//                                                write BENCH_scenarios.json
//   nestsim_run --list                            registries and config keys
//
// Honours NESTSIM_JOBS (worker pool), NESTSIM_JSONL (streamed result sink),
// NESTSIM_TRACE (Perfetto capture), NESTSIM_REPS (repetition override) and
// NESTSIM_SCENARIO_DIR (scenario search path).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/cluster/router.h"
#include "src/governors/governors.h"
#include "tools/cli_num.h"
#include "src/hw/machine_spec.h"
#include "src/scenario/baseline.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"

using namespace nestsim;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <scenario.json>...\n"
      "\n"
      "options:\n"
      "  --list               print machines, policies, governors, workload\n"
      "                       families and config-override keys, then exit\n"
      "  --print-jobs         expand the grid and list jobs without running\n"
      "  --no-table           skip the paper-style table (JSONL/baseline only)\n"
      "  --reps N             repetitions per cell (beats NESTSIM_REPS)\n"
      "  --base-seed N        first seed (scenario default otherwise)\n"
      "  --timeout S          per-job wall-clock budget in seconds\n"
      "  --parallel N         PDES worker threads per job (0 = serial reference\n"
      "                       loop; results are byte-identical at any N)\n"
      "  --record-baseline    write golden baselines/<name>.jsonl\n"
      "  --check-baseline     compare against the golden; write the verdict\n"
      "  --baseline-dir DIR   golden directory (default: baselines)\n"
      "  --wall-tolerance X   also check wall_s within a relative band X\n"
      "  --verdict PATH       verdict JSON path (default: BENCH_scenarios.json)\n",
      argv0);
  return 2;
}

void PrintList() {
  std::printf("machines:\n");
  for (const std::string& name : MachineNames()) {
    const MachineSpec& spec = MachineByName(name);
    std::printf("  %-16s %s, %dx%dx%d\n", name.c_str(), spec.cpu_model.c_str(), spec.num_sockets,
                spec.physical_cores_per_socket, spec.threads_per_core);
  }
  std::printf("schedulers: %s\n", JoinNames(SchedulerKindKeys()).c_str());
  std::printf("governors: %s\n", JoinNames(GovernorNames()).c_str());
  std::printf("workload families:\n");
  for (const WorkloadFamily& family : WorkloadFamilies()) {
    std::printf("  %-10s %s\n", family.name.c_str(), family.summary.c_str());
    if (!family.presets.empty()) {
      std::printf("    presets: %s\n", JoinNames(family.presets).c_str());
    }
    for (const auto& [group, rows] : family.groups) {
      std::printf("    group %s: %zu rows\n", group.c_str(), rows.size());
    }
  }
  std::printf("config override keys: %s\n", JoinNames(ConfigOverrideKeys()).c_str());
  std::printf("cluster routers: %s\n", JoinNames(RouterNames()).c_str());
  std::printf("cluster spec keys: cluster.preset, cluster.machines, cluster.router\n");
}

void PrintJobs(const ScenarioRun& run) {
  const Scenario& sc = run.scenario;
  if (sc.has_cluster) {
    std::printf("scenario %s [cluster x%d %s]: %zu jobs (reps %d, base seed %llu)\n",
                sc.name.c_str(), sc.cluster_machines, sc.cluster_router.c_str(), run.jobs.size(),
                run.repetitions, static_cast<unsigned long long>(run.base_seed));
  } else {
    std::printf("scenario %s: %zu jobs (reps %d, base seed %llu)\n", sc.name.c_str(),
                run.jobs.size(), run.repetitions, static_cast<unsigned long long>(run.base_seed));
  }
  const std::string suffix =
      sc.has_cluster
          ? " [cluster x" + std::to_string(sc.cluster_machines) + " " + sc.cluster_router + "]"
          : "";
  for (const Job& job : run.jobs) {
    std::printf("  %-16s %-20s %-24s %s/%s%s\n", job.config.machine.c_str(), job.workload.c_str(),
                job.variant.c_str(), SchedulerKindKey(job.config.scheduler),
                job.config.governor.c_str(), suffix.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool print_jobs = false;
  bool no_table = false;
  bool record_baseline = false;
  bool check_baseline = false;
  std::string baseline_dir = "baselines";
  std::string verdict_path = "BENCH_scenarios.json";
  double wall_tolerance = 0.0;
  ScenarioRunOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--print-jobs") {
      print_jobs = true;
    } else if (arg == "--no-table") {
      no_table = true;
    } else if (arg == "--record-baseline") {
      record_baseline = true;
    } else if (arg == "--check-baseline") {
      check_baseline = true;
    } else if (arg == "--baseline-dir") {
      baseline_dir = value("--baseline-dir");
    } else if (arg == "--verdict") {
      verdict_path = value("--verdict");
    } else if (arg == "--wall-tolerance") {
      wall_tolerance = std::atof(value("--wall-tolerance"));
    } else if (arg == "--reps") {
      const char* v = value("--reps");
      if (!ParseCliPositiveInt(v, &options.repetitions_override)) {
        std::fprintf(stderr, "--reps needs a positive integer, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--base-seed") {
      options.has_base_seed = true;
      options.base_seed = std::strtoull(value("--base-seed"), nullptr, 10);
    } else if (arg == "--parallel") {
      const char* v = value("--parallel");
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 64) {
        std::fprintf(stderr, "--parallel needs an integer in [0, 64], got '%s'\n", v);
        return 2;
      }
      options.parallel_workers = static_cast<int>(n);
    } else if (arg == "--timeout") {
      const char* v = value("--timeout");
      if (!ParseCliPositiveDouble(v, &options.timeout_override_s)) {
        std::fprintf(stderr, "--timeout needs a positive number of seconds, got '%s'\n", v);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  if (list) {
    PrintList();
    return 0;
  }
  if (files.empty()) {
    return Usage(argv[0]);
  }
  if (record_baseline && check_baseline) {
    std::fprintf(stderr, "--record-baseline and --check-baseline are mutually exclusive\n");
    return 2;
  }

  std::vector<BaselineCheck> checks;
  int exit_code = 0;
  for (const std::string& file : files) {
    const std::string path = ResolveScenarioPath(file);
    Scenario scenario;
    ScenarioError err;
    if (!LoadScenario(path, &scenario, &err)) {
      std::fprintf(stderr, "%s\n", err.Join().c_str());
      return 2;
    }
    ScenarioRun run;
    if (!ExpandScenario(scenario, options, &run, &err)) {
      std::fprintf(stderr, "%s\n", err.Join().c_str());
      return 2;
    }
    if (print_jobs) {
      PrintJobs(run);
      continue;
    }
    if (!no_table) {
      PrintScenarioHeader(scenario);
    }
    ExecuteScenario(&run);
    if (!no_table) {
      try {
        PrintScenarioTables(run);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        exit_code = 1;
      }
    }
    for (const JobOutcome& outcome : run.outcomes) {
      if (!outcome.ok()) {
        exit_code = 1;
      }
    }
    if (record_baseline) {
      std::string error;
      if (!RecordBaseline(run, baseline_dir, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "[baseline] recorded %s\n",
                   BaselinePath(baseline_dir, run.scenario.name).c_str());
    }
    if (check_baseline) {
      BaselineCheck check = CheckBaseline(run, baseline_dir, wall_tolerance);
      for (const std::string& problem : check.problems) {
        std::fprintf(stderr, "[baseline] %s\n", problem.c_str());
      }
      std::fprintf(stderr, "[baseline] %s: %s (%d jobs compared)\n", check.scenario.c_str(),
                   check.ok() ? "PASS" : "FAIL", check.compared);
      if (!check.ok()) {
        exit_code = 1;
      }
      checks.push_back(std::move(check));
    }
  }

  if (check_baseline && !checks.empty()) {
    std::ofstream out(verdict_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write verdict %s\n", verdict_path.c_str());
      return 1;
    }
    out << BaselineVerdictJson(checks) << "\n";
    std::fprintf(stderr, "[baseline] verdict written to %s\n", verdict_path.c_str());
  }
  return exit_code;
}
