// nestsim_export: stream per-decision feature rows from scenario runs
// (docs/PREDICTION.md).
//
//   nestsim_export scenarios/smoke.json                  CSV to stdout
//   nestsim_export --format jsonl scenarios/smoke.json   JSONL to stdout
//   nestsim_export --out rows.csv scenarios/smoke.json   write a file
//   nestsim_export --train model.json scenarios/smoke.json
//                                          fit a table model from the rows
//   nestsim_export --list-columns          print the feature schema and exit
//
// One row is captured per fork/wake placement decision, in job order — the
// stream is byte-identical at any NESTSIM_JOBS worker count and any
// --parallel PDES setting. Honours NESTSIM_JOBS, NESTSIM_REPS and
// NESTSIM_SCENARIO_DIR like nestsim_run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/predict/model.h"
#include "src/scenario/decision_export.h"
#include "tools/cli_num.h"

using namespace nestsim;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <scenario.json>...\n"
      "\n"
      "options:\n"
      "  --format csv|jsonl   output format (default: csv)\n"
      "  --out PATH           write the stream to PATH instead of stdout\n"
      "  --train PATH         additionally fit a nest-predict-table model from\n"
      "                       every exported row and write it to PATH\n"
      "  --list-columns       print the feature schema and exit\n"
      "  --reps N             repetitions per cell (beats NESTSIM_REPS)\n"
      "  --base-seed N        first seed (scenario default otherwise)\n"
      "  --timeout S          per-job wall-clock budget in seconds\n"
      "  --parallel N         PDES worker threads per job (0 = serial reference\n"
      "                       loop; the stream is byte-identical at any N)\n",
      argv0);
  return 2;
}

void PrintColumns() {
  std::printf("fixed columns:\n");
  for (int i = 0; i < kNumFeatureColumns; ++i) {
    std::printf("  %s\n", kFeatureColumns[i]);
  }
  std::printf("per-core columns (cpu<i>_<suffix>):\n");
  for (int i = 0; i < kNumPerCoreColumns; ++i) {
    std::printf("  %s\n", kPerCoreColumnSuffixes[i]);
  }
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  bool list_columns = false;
  std::string out_path;
  std::string train_path;
  ScenarioRunOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg == "--list-columns") {
      list_columns = true;
    } else if (arg == "--format") {
      const std::string format = value("--format");
      if (format == "csv") {
        jsonl = false;
      } else if (format == "jsonl") {
        jsonl = true;
      } else {
        std::fprintf(stderr, "--format needs csv or jsonl, got '%s'\n", format.c_str());
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--train") {
      train_path = value("--train");
    } else if (arg == "--reps") {
      const char* v = value("--reps");
      if (!ParseCliPositiveInt(v, &options.repetitions_override)) {
        std::fprintf(stderr, "--reps needs a positive integer, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--base-seed") {
      options.has_base_seed = true;
      options.base_seed = std::strtoull(value("--base-seed"), nullptr, 10);
    } else if (arg == "--parallel") {
      const char* v = value("--parallel");
      long n = 0;
      if (!ParseCliInt(v, 0, 64, &n)) {
        std::fprintf(stderr, "--parallel needs an integer in [0, 64], got '%s'\n", v);
        return 2;
      }
      options.parallel_workers = static_cast<int>(n);
    } else if (arg == "--timeout") {
      const char* v = value("--timeout");
      if (!ParseCliPositiveDouble(v, &options.timeout_override_s)) {
        std::fprintf(stderr, "--timeout needs a positive number of seconds, got '%s'\n", v);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  if (list_columns) {
    PrintColumns();
    return 0;
  }
  if (files.empty()) {
    return Usage(argv[0]);
  }
  // The export runs every scenario job; a progress line on stdout would
  // corrupt the stream, so keep the campaign quiet.
  options.campaign.progress = false;

  std::string stream;
  std::vector<DecisionRow> all_rows;
  bool wrote_header = false;
  for (const std::string& file : files) {
    const std::string path = ResolveScenarioPath(file);
    Scenario scenario;
    ScenarioError err;
    if (!LoadScenario(path, &scenario, &err)) {
      std::fprintf(stderr, "%s\n", err.Join().c_str());
      return 2;
    }
    DecisionExportResult result;
    if (!CollectDecisionTraces(scenario, options, &result, &err)) {
      std::fprintf(stderr, "%s\n", err.Join().c_str());
      return 1;
    }
    // Multi-file exports keep one header (the first file's width) — exporting
    // mixed machine widths across files is better done one file at a time.
    std::string text = SerializeDecisions(result, jsonl);
    if (!jsonl && wrote_header) {
      const size_t eol = text.find('\n');
      text.erase(0, eol == std::string::npos ? text.size() : eol + 1);
    }
    wrote_header = true;
    stream += text;
    if (!train_path.empty()) {
      std::vector<DecisionRow> rows = FlattenDecisions(result);
      all_rows.insert(all_rows.end(), rows.begin(), rows.end());
    }
  }

  if (out_path.empty()) {
    std::fwrite(stream.data(), 1, stream.size(), stdout);
  } else if (!WriteFile(out_path, stream)) {
    return 1;
  }

  if (!train_path.empty()) {
    const TableModel model = TrainTableModel(all_rows);
    if (!WriteFile(train_path, model.ToJson())) {
      return 1;
    }
    std::fprintf(stderr, "[train] %zu rows -> %zu buckets -> %s\n", all_rows.size(),
                 model.buckets().size(), train_path.c_str());
  }
  return 0;
}
