#!/usr/bin/env bash
# Docs-consistency check, run by CI.
#
# Keeps the entry-point docs honest against the tree:
#   1. every NESTSIM_* environment variable the code reads is documented in
#      README.md;
#   2. every src/<dir>/ named in DESIGN.md exists;
#   3. every top-level src/ subsystem has a row in DESIGN.md §2 and a line in
#      README.md's "What's in the box";
#   4. docs/OBSERVABILITY.md is linked from README.md and DESIGN.md;
#   5. every trace event name and counter key the observability layer emits
#      is documented in docs/OBSERVABILITY.md;
#   6. docs/SCENARIOS.md is linked from README.md and named in EXPERIMENTS.md;
#   7. every scenario file under scenarios/ is named in the docs, and every
#      scenario named in the docs exists;
#   8. every config-override key the scenario engine accepts is documented in
#      docs/SCENARIOS.md;
#   9. every invariant name the checker can emit is documented in
#      docs/TESTING.md, and docs/TESTING.md is linked from README.md;
#  10. docs/BENCHMARKS.md is linked from README.md, and every benchmark
#      record name the perf suite emits is documented there;
#  11. docs/CLUSTER.md is linked from README.md and docs/SCENARIOS.md, every
#      router name src/cluster/ registers is documented there, and so is
#      every cluster.* spec key the scenario parser accepts;
#  12. docs/MODEL.md is linked from README.md and DESIGN.md, and every
#      cache.*/nest_cache.* config key and cache counter name appears in both
#      docs/MODEL.md and docs/SCENARIOS.md (the counters additionally in
#      docs/OBSERVABILITY.md via rule 5b);
#  13. docs/FAULTS.md is linked from README.md and DESIGN.md, every
#      fault.*/power.*/nest_budget.* config key (plus `replicas`) the
#      scenario engine accepts is documented there, and so is every
#      resilience field the campaign JSONL sink can emit;
#  14. docs/PARALLEL.md is linked from README.md and DESIGN.md, every
#      parallel.* config key the scenario engine accepts is documented
#      there, and so are the huge-machine and rack preset names the PDES
#      layer ships (intel-8153-4s/8s, rack8/16/32);
#  15. docs/PREDICTION.md is linked from README.md and DESIGN.md, every
#      exported feature column and per-core suffix (the kFeatureColumns /
#      kPerCoreColumnSuffixes initializers in src/predict/features.h) is
#      documented there, and so is every predict.* config key the scenario
#      engine accepts.

set -u
cd "$(dirname "$0")/.."
fail=0

# 1. Environment variables.
for var in $(grep -rhoE 'getenv\("NESTSIM_[A-Z_]+"\)' src bench examples tools \
               | sed 's/getenv("//; s/")//' | sort -u); do
  if ! grep -q "$var" README.md; then
    echo "FAIL: $var is read by the code but not documented in README.md"
    fail=1
  fi
done

# 2. Directories DESIGN.md names must exist.
for dir in $(grep -ohE 'src/[a-z_]+/' DESIGN.md | sort -u); do
  if [ ! -d "$dir" ]; then
    echo "FAIL: DESIGN.md names $dir but the directory does not exist"
    fail=1
  fi
done

# 3. Every src/ subsystem is covered by both docs.
for dir in src/*/; do
  for doc in DESIGN.md README.md; do
    if ! grep -q "$dir" "$doc"; then
      echo "FAIL: $dir has no mention in $doc"
      fail=1
    fi
  done
done

# 4. The observability reference is reachable from the entry points.
for doc in README.md DESIGN.md; do
  if ! grep -q 'docs/OBSERVABILITY.md' "$doc"; then
    echo "FAIL: $doc does not link docs/OBSERVABILITY.md"
    fail=1
  fi
done

# 5a. Enum value names (placement paths, migration reasons, nest events) are
#     all documented. The name functions return quoted lowercase words.
for name in $(grep -ohE 'return "[a-z_]+"' src/kernel/task.h src/kernel/observer.h \
                | sed 's/return "//; s/"//' | sort -u); do
  if ! grep -q "\`$name\`" docs/OBSERVABILITY.md; then
    echo "FAIL: event/path name '$name' is emitted but not documented in docs/OBSERVABILITY.md"
    fail=1
  fi
done

# 5b. Counter JSON keys.
for key in $(grep -ohE 'AppendU64\(out, "[a-z_]+"' src/obs/sched_counters.cc \
               | sed 's/.*"\([a-z_]*\)"/\1/' | sort -u); do
  if ! grep -q "\`$key\`" docs/OBSERVABILITY.md; then
    echo "FAIL: counter key '$key' is emitted but not documented in docs/OBSERVABILITY.md"
    fail=1
  fi
done

# 6. The scenario reference is reachable from the entry points.
for doc in README.md EXPERIMENTS.md; do
  if ! grep -q 'docs/SCENARIOS.md' "$doc"; then
    echo "FAIL: $doc does not mention docs/SCENARIOS.md"
    fail=1
  fi
done

# 7. Scenario files and docs agree in both directions.
for f in scenarios/*.json; do
  name=$(basename "$f")
  if ! grep -q "$name" docs/SCENARIOS.md && ! grep -q "$name" EXPERIMENTS.md; then
    echo "FAIL: $f is not named in docs/SCENARIOS.md or EXPERIMENTS.md"
    fail=1
  fi
done
for name in $(grep -ohE 'scenarios/[a-z0-9_-]+\.json' \
                README.md EXPERIMENTS.md docs/SCENARIOS.md | sort -u); do
  if [ ! -f "$name" ]; then
    echo "FAIL: docs name $name but the file does not exist"
    fail=1
  fi
done

# 8. Config-override keys. The override table in scenario.cc holds entries of
#    the form {"key", "expected-type", ...}.
for key in $(grep -ohE '\{"[a-z_]+(\.[a-z_]+)?", "(bool|string|number|integer)' \
               src/scenario/scenario.cc | sed 's/{"//; s/".*//' | sort -u); do
  if ! grep -q "\`$key\`" docs/SCENARIOS.md; then
    echo "FAIL: config key '$key' is accepted by src/scenario/ but not documented in docs/SCENARIOS.md"
    fail=1
  fi
done

# 9. Invariant names. InvariantName() returns quoted lowercase words; each
#    must appear backticked in the testing reference, which README links.
for name in $(grep -ohE 'return "[a-z_]+"' src/check/invariant_checker.h \
                | sed 's/return "//; s/"//' | sort -u); do
  if ! grep -q "\`$name\`" docs/TESTING.md; then
    echo "FAIL: invariant '$name' is emitted but not documented in docs/TESTING.md"
    fail=1
  fi
done
if ! grep -q 'docs/TESTING.md' README.md; then
  echo "FAIL: README.md does not link docs/TESTING.md"
  fail=1
fi

# 10. The benchmark reference is reachable, and every microbenchmark name in
#     the suite (quoted "family/name" literals) plus the grid record prefix is
#     documented.
if ! grep -q 'docs/BENCHMARKS.md' README.md; then
  echo "FAIL: README.md does not link docs/BENCHMARKS.md"
  fail=1
fi
for name in $(grep -ohE '"[a-z_]+/[a-z_]+"' src/perf/core_benches.cc                 | sed 's/"//g' | sort -u); do
  if ! grep -q "\`$name\`" docs/BENCHMARKS.md; then
    echo "FAIL: benchmark '$name' is emitted but not documented in docs/BENCHMARKS.md"
    fail=1
  fi
done
for name in "grid/table4" "grid/fig12"; do
  if ! grep -q "$name" docs/BENCHMARKS.md; then
    echo "FAIL: grid record '$name' is not documented in docs/BENCHMARKS.md"
    fail=1
  fi
done

# 11. The cluster reference is reachable, covers every router the registry
#     can build (name() implementations return quoted kebab-case words), and
#     documents every cluster.* key the scenario parser accepts.
for doc in README.md docs/SCENARIOS.md; do
  if ! grep -q 'docs/CLUSTER.md' "$doc"; then
    echo "FAIL: $doc does not link docs/CLUSTER.md"
    fail=1
  fi
done
for name in $(grep -ohE 'return "[a-z-]+"' src/cluster/router.cc \
                | sed 's/return "//; s/"//' | sort -u); do
  if ! grep -q "\`$name\`" docs/CLUSTER.md; then
    echo "FAIL: router '$name' is registered by src/cluster/ but not documented in docs/CLUSTER.md"
    fail=1
  fi
done
for key in $(sed -n '/^void ParseCluster/,/^}/p' src/scenario/scenario.cc \
               | grep -ohE 'Take[A-Za-z]+\("[a-z_]+"' | sed 's/.*("//; s/"//' | sort -u); do
  if ! grep -q "\`cluster.$key\`" docs/CLUSTER.md; then
    echo "FAIL: cluster spec key 'cluster.$key' is not documented in docs/CLUSTER.md"
    fail=1
  fi
done

# 12. The hardware-model reference is reachable, and the cache model's
#     vocabulary is documented where users meet it: every cache.*/nest_cache.*
#     override key (from the same scenario.cc table rule 8 reads) and every
#     cache_* counter key must appear backticked in docs/MODEL.md and
#     docs/SCENARIOS.md.
for doc in README.md DESIGN.md; do
  if ! grep -q 'docs/MODEL.md' "$doc"; then
    echo "FAIL: $doc does not link docs/MODEL.md"
    fail=1
  fi
done
for key in $(grep -ohE '\{"(cache|nest_cache)\.[a-z_]+", "(bool|string|number|integer)' \
               src/scenario/scenario.cc | sed 's/{"//; s/".*//' | sort -u); do
  for doc in docs/MODEL.md docs/SCENARIOS.md; do
    if ! grep -q "\`$key\`" "$doc"; then
      echo "FAIL: cache config key '$key' is not documented in $doc"
      fail=1
    fi
  done
done
for key in $(grep -ohE 'AppendU64\(out, "cache_[a-z_]+"' src/obs/sched_counters.cc \
               | sed 's/.*"\(cache_[a-z_]*\)"/\1/' | sort -u); do
  for doc in docs/MODEL.md docs/SCENARIOS.md; do
    if ! grep -q "\`$key\`" "$doc"; then
      echo "FAIL: cache counter '$key' is not documented in $doc"
      fail=1
    fi
  done
done

# 13. The fault/energy reference is reachable, documents every fault-family
#     config key the scenario parser accepts, and glosses every resilience
#     field the JSONL sink can emit.
for doc in README.md DESIGN.md; do
  if ! grep -q 'docs/FAULTS.md' "$doc"; then
    echo "FAIL: $doc does not link docs/FAULTS.md"
    fail=1
  fi
done
for key in $(grep -ohE '\{"((fault|power|nest_budget)\.[a-z_]+|replicas)", "(bool|string|number|integer)' \
               src/scenario/scenario.cc | sed 's/{"//; s/".*//' | sort -u); do
  if ! grep -q "\`$key\`" docs/FAULTS.md; then
    echo "FAIL: fault config key '$key' is accepted by src/scenario/ but not documented in docs/FAULTS.md"
    fail=1
  fi
done
for field in $(sed -n '/r.resilience.any()/,/^      }/p' src/campaign/jsonl_sink.cc \
                 | grep -ohE 'AppendField\(out, "[a-z_]+"' | sed 's/.*"\([a-z_]*\)"/\1/' | sort -u); do
  if ! grep -q "\`$field\`" docs/FAULTS.md; then
    echo "FAIL: resilience field '$field' is emitted by the JSONL sink but not documented in docs/FAULTS.md"
    fail=1
  fi
done

# 14. The parallel-PDES reference is reachable, documents every parallel.*
#     key the scenario engine accepts (from the same scenario.cc table rule 8
#     reads), and names the huge-machine and rack presets that exist for
#     PDES-scale runs.
for doc in README.md DESIGN.md; do
  if ! grep -q 'docs/PARALLEL.md' "$doc"; then
    echo "FAIL: $doc does not link docs/PARALLEL.md"
    fail=1
  fi
done
for key in $(grep -ohE '\{"parallel\.[a-z_]+", "(bool|string|number|integer)' \
               src/scenario/scenario.cc | sed 's/{"//; s/".*//' | sort -u); do
  if ! grep -q "\`$key\`" docs/PARALLEL.md; then
    echo "FAIL: parallel config key '$key' is accepted by src/scenario/ but not documented in docs/PARALLEL.md"
    fail=1
  fi
done
for preset in "intel-8153-4s" "intel-8153-8s" "rack8" "rack16" "rack32"; do
  if ! grep -q "\`$preset\`" docs/PARALLEL.md; then
    echo "FAIL: PDES preset '$preset' is not documented in docs/PARALLEL.md"
    fail=1
  fi
done

# 15. The prediction reference is reachable and documents the full exported
#     feature schema (fixed columns + per-core suffixes, read from the
#     initializers in features.h) and every predict.* override key.
for doc in README.md DESIGN.md; do
  if ! grep -q 'docs/PREDICTION.md' "$doc"; then
    echo "FAIL: $doc does not link docs/PREDICTION.md"
    fail=1
  fi
done
for name in $(sed -n '/kFeatureColumns\[\] = {/,/};/p; /kPerCoreColumnSuffixes\[\] = {/,/};/p' \
                src/predict/features.h | grep -ohE '"[a-z_]+"' | sed 's/"//g' | sort -u); do
  if ! grep -q "\`$name\`" docs/PREDICTION.md; then
    echo "FAIL: feature column '$name' is exported but not documented in docs/PREDICTION.md"
    fail=1
  fi
done
for key in $(grep -ohE '\{"predict\.[a-z_]+", "(bool|string|number|integer)' \
               src/scenario/scenario.cc | sed 's/{"//; s/".*//' | sort -u); do
  if ! grep -q "\`$key\`" docs/PREDICTION.md; then
    echo "FAIL: predict config key '$key' is accepted by src/scenario/ but not documented in docs/PREDICTION.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs-consistency check FAILED"
  exit 1
fi
echo "docs-consistency check passed"
