// nestsim_fuzz: randomized invariant & differential testing (docs/TESTING.md).
//
//   nestsim_fuzz --runs 500                     CI smoke: 500 random scenarios
//   nestsim_fuzz --runs 100 --base-seed 7000    a different slice of seeds
//   nestsim_fuzz --shrink                       minimise failures before writing
//   nestsim_fuzz --gen-corpus 5                 emit scenarios without running
//
// Each run draws one scenario from the seeded generator (src/check/), executes
// it under every scheduler variant twice (1 worker, then a pool) with the
// invariant checker forced on, and cross-checks determinism, task accounting,
// and full-load CFS/Nest neutrality. Failures are written to --repro-dir as
// standard scenario files (fuzz-<seed>.json, plus fuzz-<seed>-min.json when
// --shrink is on) ready to commit under scenarios/corpus/ and replay with
// nestsim_run.
//
// Exit codes: 0 all runs clean, 1 at least one failure, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/check/differential.h"
#include "src/check/generator.h"
#include "src/check/shrink.h"
#include "tools/cli_num.h"

using namespace nestsim;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "options:\n"
               "  --runs N         scenarios to generate and cross-check (default 100)\n"
               "  --base-seed S    first generator seed (default 1)\n"
               "  --shrink         minimise failing scenarios before writing repros\n"
               "  --repro-dir DIR  where repros go (default: scenarios/corpus)\n"
               "  --jobs N         parallel-pass worker count (default 4)\n"
               "  --band X         full-load neutrality band (default 0.35)\n"
               "  --gen-corpus N   write N generated scenarios to --repro-dir and exit\n"
               "  --mutate         self-test: inject a lost-wakeup kernel fault into\n"
               "                   every run; the harness MUST fail (exit 1)\n",
               argv0);
  return 2;
}

bool WriteFile(const std::string& dir, const std::string& name, const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "nestsim_fuzz: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  std::fprintf(stderr, "nestsim_fuzz: wrote %s\n", path.c_str());
  return true;
}

// Renames the scenario inside a shrunk spec so the repro file and its
// baseline name do not collide with the unshrunk one.
void RenameSpec(JsonValue* spec, const std::string& name) {
  for (auto& [key, value] : spec->members) {
    if (key == "name") {
      value.string = name;
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 100;
  uint64_t base_seed = 1;
  bool shrink = false;
  std::string repro_dir = "scenarios/corpus";
  long gen_corpus = 0;
  DifferentialOptions diff;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--runs") {
      const char* v = next();
      if (v == nullptr || !ParseCliInt(v, 1, LONG_MAX, &runs)) {
        std::fprintf(stderr, "nestsim_fuzz: --runs needs a positive integer, got '%s'\n",
                     v == nullptr ? "" : v);
        return Usage(argv[0]);
      }
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--repro-dir") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      repro_dir = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !ParseCliPositiveInt(v, &diff.parallel_jobs)) {
        std::fprintf(stderr, "nestsim_fuzz: --jobs needs a positive integer, got '%s'\n",
                     v == nullptr ? "" : v);
        return Usage(argv[0]);
      }
    } else if (arg == "--band") {
      const char* v = next();
      if (v == nullptr || !ParseCliPositiveDouble(v, &diff.neutrality_band)) {
        std::fprintf(stderr, "nestsim_fuzz: --band needs a positive number, got '%s'\n",
                     v == nullptr ? "" : v);
        return Usage(argv[0]);
      }
    } else if (arg == "--mutate") {
      // The deliberately broken kernel from the mutation self-test: every
      // 50th enqueue loses its wakeup and the balancers are off, so nothing
      // rescues the stuck queue. The invariant checker has to catch this.
      diff.mutate_config = [](ExperimentConfig* config) {
        config->kernel.enable_newidle_balance = false;
        config->kernel.enable_periodic_balance = false;
        config->kernel.test_skip_enqueue_dispatch_every = 50;
      };
    } else if (arg == "--gen-corpus") {
      const char* v = next();
      if (v == nullptr || !ParseCliInt(v, 1, LONG_MAX, &gen_corpus)) {
        std::fprintf(stderr, "nestsim_fuzz: --gen-corpus needs a positive integer, got '%s'\n",
                     v == nullptr ? "" : v);
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "nestsim_fuzz: unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (gen_corpus > 0) {
    for (long i = 0; i < gen_corpus; ++i) {
      const GeneratedScenario gen = GenerateScenario(base_seed + static_cast<uint64_t>(i));
      if (!WriteFile(repro_dir, "fuzz-" + std::to_string(gen.seed) + ".json", gen.json)) {
        return 1;
      }
    }
    return 0;
  }

  long failures = 0;
  for (long i = 0; i < runs; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    const GeneratedScenario gen = GenerateScenario(seed);
    const DifferentialReport report = RunDifferential(gen, diff);
    if ((i + 1) % 50 == 0 || i + 1 == runs) {
      std::fprintf(stderr, "nestsim_fuzz: %ld/%ld scenarios, %ld failure(s)\n", i + 1, runs,
                   failures);
    }
    if (report.ok()) {
      continue;
    }
    ++failures;
    std::fprintf(stderr, "nestsim_fuzz: seed %llu FAILED (%zu jobs):\n%s\n",
                 static_cast<unsigned long long>(seed), report.jobs, report.Join().c_str());
    WriteFile(repro_dir, "fuzz-" + std::to_string(seed) + ".json", gen.json);
    if (shrink) {
      ShrinkOptions shrink_options;
      shrink_options.diff = diff;
      ShrinkOutcome min = ShrinkScenario(gen.spec, gen.full_load, shrink_options);
      RenameSpec(&min.spec, "fuzz-" + std::to_string(seed) + "-min");
      min.json = JsonSerialize(min.spec, 2) + "\n";
      std::fprintf(stderr, "nestsim_fuzz: shrunk seed %llu in %d attempts (%d reductions)\n",
                   static_cast<unsigned long long>(seed), min.attempts, min.accepted);
      WriteFile(repro_dir, "fuzz-" + std::to_string(seed) + "-min.json", min.json);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "nestsim_fuzz: %ld of %ld scenarios failed\n", failures, runs);
    return 1;
  }
  std::fprintf(stderr, "nestsim_fuzz: all %ld scenarios clean\n", runs);
  return 0;
}
