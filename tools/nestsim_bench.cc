// nestsim_bench: simulator-core micro/throughput benchmarks (docs/BENCHMARKS.md).
//
//   nestsim_bench                          micro + full table4/fig12 grids
//   nestsim_bench --quick                  CI-sized grids (~seconds, ":quick" names)
//   nestsim_bench --json BENCH_core.json   also write the JSON report
//   nestsim_bench --reference OLD.json     annotate records with speedup vs OLD
//   nestsim_bench --check-floor baselines/perf_floor.json
//                                          fail (exit 1) on events/sec regression
//
// Exit codes: 0 ok, 1 benchmark failure or floor regression, 2 usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/perf/core_benches.h"
#include "tools/cli_num.h"

using namespace nestsim;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "options:\n"
               "  --quick            CI-sized grid slices; record names gain ':quick'\n"
               "  --no-micro         skip the event-queue/run-queue/PELT microbenches\n"
               "  --grid FILE        grid scenario to benchmark (repeatable;\n"
               "                     default: table4.json fig12.json)\n"
               "  --no-grid          skip the grid benchmarks entirely\n"
               "  --no-scaling       skip the PDES threads-vs-events/sec curve\n"
               "  --scaling FILE     scaling scenario (default: pdes_scaling.json)\n"
               "  --workers LIST     comma-separated curve points (default: 0,1,2,4,8)\n"
               "  --samples N        timed samples per microbenchmark (default 5)\n"
               "  --grid-samples N   timed samples per grid (default: 3 quick, 1 full)\n"
               "  --json PATH        write the BENCH_core.json report to PATH\n"
               "  --reference PATH   prior report; records gain speedup_vs_reference\n"
               "  --check-floor PATH fail on regression vs the committed floor file\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CoreBenchOptions options;
  bool run_micro = true;
  bool run_grids = true;
  bool run_scaling = true;
  std::string scaling_scenario = "pdes_scaling.json";
  std::vector<int> scaling_workers = {0, 1, 2, 4, 8};
  std::vector<std::string> grids;
  std::string json_path;
  std::string reference_path;
  std::string floor_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--no-micro") {
      run_micro = false;
    } else if (arg == "--no-grid") {
      run_grids = false;
    } else if (arg == "--grid") {
      grids.push_back(value("--grid"));
    } else if (arg == "--no-scaling") {
      run_scaling = false;
    } else if (arg == "--scaling") {
      scaling_scenario = value("--scaling");
    } else if (arg == "--workers") {
      scaling_workers.clear();
      std::stringstream list(value("--workers"));
      std::string item;
      while (std::getline(list, item, ',')) {
        int n = 0;
        if (!ParseCliPositiveInt(item.c_str(), &n) && item != "0") {
          std::fprintf(stderr, "--workers needs comma-separated integers, got '%s'\n",
                       item.c_str());
          return 2;
        }
        scaling_workers.push_back(item == "0" ? 0 : n);
      }
      if (scaling_workers.empty()) {
        std::fprintf(stderr, "--workers needs at least one worker count\n");
        return 2;
      }
    } else if (arg == "--samples") {
      const char* v = value("--samples");
      if (!ParseCliPositiveInt(v, &options.micro_samples)) {
        std::fprintf(stderr, "--samples needs a positive integer, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--grid-samples") {
      const char* v = value("--grid-samples");
      if (!ParseCliPositiveInt(v, &options.grid_samples)) {
        std::fprintf(stderr, "--grid-samples needs a positive integer, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--json") {
      json_path = value("--json");
    } else if (arg == "--reference") {
      reference_path = value("--reference");
    } else if (arg == "--check-floor") {
      floor_path = value("--check-floor");
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (grids.empty()) {
    grids = {"table4.json", "fig12.json"};
  }

  BenchReport report;
  if (run_micro) {
    std::fprintf(stderr, "[bench] microbenchmarks (%d samples each)...\n", options.micro_samples);
    RunMicroBenches(options, &report);
  }
  if (run_grids) {
    for (const std::string& grid : grids) {
      std::fprintf(stderr, "[bench] grid %s%s...\n", grid.c_str(),
                   options.quick ? " (quick)" : "");
      if (!RunGridBench(grid, options, &report)) {
        return 1;
      }
    }
  }
  if (run_scaling) {
    std::fprintf(stderr, "[bench] scaling curve %s%s...\n", scaling_scenario.c_str(),
                 options.quick ? " (quick)" : "");
    if (!RunScalingBench(scaling_scenario, scaling_workers, options, &report)) {
      return 1;
    }
  }

  report.PrintTable(stdout);

  std::string reference_json;
  if (!reference_path.empty() && !ReadFile(reference_path, &reference_json)) {
    std::fprintf(stderr, "cannot read reference %s\n", reference_path.c_str());
    return 1;
  }
  const std::string json =
      report.ToJson(options.quick ? "quick" : "full", reference_json);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json;
    std::fprintf(stderr, "[bench] report written to %s\n", json_path.c_str());
  }

  if (!floor_path.empty()) {
    std::string floor_json;
    if (!ReadFile(floor_path, &floor_json)) {
      std::fprintf(stderr, "cannot read floor %s\n", floor_path.c_str());
      return 1;
    }
    std::string problems;
    if (!CheckPerfFloor(report, floor_json, &problems)) {
      std::fprintf(stderr, "[bench] FLOOR FAIL:\n%s", problems.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] floor check passed (%s)\n", floor_path.c_str());
  }
  return 0;
}
